//! LDBC-style social-network generator.
//!
//! The clique/cycle/path suite in [`crate::catalog`] stresses the engines over a
//! single `edge` relation. Real graph-query workloads — the LDBC social network
//! benchmark family analysed by the SIGMOD 2014 Programming Contest follow-ups —
//! instead join *many typed relations* with wide arities and selective attribute
//! filters. This module grows the generator in that direction: a typed,
//! attributed schema emitted as ordinary columnar [`Relation`]s plus a
//! [`Catalog`] describing arities and value domains.
//!
//! ## Schema
//!
//! | relation       | columns                | shape |
//! |----------------|------------------------|-------|
//! | `person`       | `(person)`             | all person ids |
//! | `knows`        | `(person, person)`     | symmetric friendship, degree-skewed |
//! | `post`         | `(post, day)`          | creation day, correlated with the creator's activity window |
//! | `hasCreator`   | `(post, person)`       | every post has exactly one creator |
//! | `likes`        | `(person, post, day)`  | ternary; like-day ≥ the post's creation day, biased toward friends' posts |
//! | `tag`          | `(tag)`                | all tag ids |
//! | `hasTag`       | `(post, tag)`          | Zipf-skewed tag popularity |
//! | `tagSample`    | `(tag)`                | selective random tag subset (query parameter) |
//! | `personSample` | `(person)`             | selective random person subset (query parameter) |
//!
//! All ids live in one `i64` value space, carved into **disjoint ranges** —
//! persons first, then posts, tags, and days — so the untyped join engines can
//! run the queries unchanged while accidental cross-type value collisions are
//! impossible. [`Catalog::domain`] reports each range.
//!
//! ## Skew and correlation
//!
//! * friendship degrees are heavy-tailed ([`crate::sample::powerlaw_degrees`]),
//!   paired Chung–Lu style so popular people attract popular friends;
//! * each person posts within a short *activity window* of days, and likes
//!   arrive a geometric-ish delay **after** the post's creation day — the
//!   temporal correlation selective "fresh" queries lean on;
//! * tags follow a Zipf-like popularity curve: a few tags label a large
//!   fraction of posts, the tail is rare — exactly the regime where a
//!   selective tag filter changes the best attribute order.
//!
//! Everything is deterministic in [`LdbcConfig::seed`].

use crate::error::DatagenError;
use crate::sample::powerlaw_degrees;
use gj_storage::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which typed id range a column draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A person id.
    Person,
    /// A post id.
    Post,
    /// A tag id.
    Tag,
    /// A day id (timestamps, bucketed to days).
    Day,
}

/// A half-open id range `[lo, hi)` in the shared value space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    /// First id in the range.
    pub lo: i64,
    /// One past the last id in the range.
    pub hi: i64,
}

impl Domain {
    /// Number of ids in the range.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }

    /// Whether `v` falls inside the range.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v < self.hi
    }
}

/// Schema metadata for one generated relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationMeta {
    /// Relation name as registered in the database (e.g. `"hasCreator"`).
    pub name: &'static str,
    /// Typed column kinds, one per attribute; `len()` is the arity.
    pub columns: Vec<EntityKind>,
    /// Realised row count (after sorting and deduplication).
    pub rows: usize,
}

impl RelationMeta {
    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// The typed schema description emitted next to the data: per-relation arities
/// and column kinds, and the id range behind every [`EntityKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Catalog {
    persons: Domain,
    posts: Domain,
    tags: Domain,
    days: Domain,
    relations: Vec<RelationMeta>,
}

impl Catalog {
    /// The id range backing a typed column kind.
    pub fn domain(&self, kind: EntityKind) -> Domain {
        match kind {
            EntityKind::Person => self.persons,
            EntityKind::Post => self.posts,
            EntityKind::Tag => self.tags,
            EntityKind::Day => self.days,
        }
    }

    /// All generated relations, in registration order.
    pub fn relations(&self) -> &[RelationMeta] {
        &self.relations
    }

    /// Metadata for one relation by name.
    pub fn relation(&self, name: &str) -> Option<&RelationMeta> {
        self.relations.iter().find(|m| m.name == name)
    }
}

/// Size and shape knobs for the generator. All sizes are *requested* means;
/// the realised relations are sorted and deduplicated, so exact counts vary
/// slightly. Oversized degree parameters are rejected with a typed
/// [`DatagenError`], never silently clamped.
#[derive(Debug, Clone, PartialEq)]
pub struct LdbcConfig {
    /// Number of persons.
    pub persons: usize,
    /// Mean friends per person (heavy-tailed around this mean).
    pub avg_friends: usize,
    /// Mean posts per person (heavy-tailed around this mean).
    pub posts_per_person: usize,
    /// Number of distinct tags.
    pub tags: usize,
    /// Mean likes issued per person.
    pub likes_per_person: usize,
    /// Mean tags per post.
    pub tags_per_post: usize,
    /// Number of day buckets in the timeline.
    pub days: usize,
    /// Selectivity of `tagSample` (each tag kept with probability `1/s`).
    pub tag_selectivity: u32,
    /// Selectivity of `personSample`.
    pub person_selectivity: u32,
    /// Master seed; every derived stream re-seeds deterministically from it.
    pub seed: u64,
}

impl Default for LdbcConfig {
    fn default() -> Self {
        LdbcConfig {
            persons: 300,
            avg_friends: 6,
            posts_per_person: 3,
            tags: 40,
            likes_per_person: 10,
            tags_per_post: 2,
            days: 64,
            tag_selectivity: 8,
            person_selectivity: 8,
            seed: 42,
        }
    }
}

/// A generated LDBC-style social network: the columnar relations plus the
/// [`Catalog`] describing them.
///
/// This is the generator entry point:
///
/// ```
/// use gj_datagen::ldbc::{EntityKind, LdbcConfig, SocialNetwork};
///
/// let net = SocialNetwork::generate(&LdbcConfig {
///     persons: 60,
///     tags: 12,
///     ..LdbcConfig::default()
/// })
/// .unwrap();
///
/// // Nine typed relations, ready to register in a `Database`.
/// assert_eq!(net.relations().len(), 9);
/// let likes = net.relation("likes").unwrap();
/// assert_eq!(likes.arity(), 3); // (person, post, day)
///
/// // The catalog mirrors the data and carves ids into disjoint typed ranges.
/// let catalog = net.catalog();
/// assert_eq!(catalog.relation("likes").unwrap().rows, likes.len());
/// let persons = catalog.domain(EntityKind::Person);
/// let posts = catalog.domain(EntityKind::Post);
/// assert_eq!(persons.lo, 0);
/// assert_eq!(persons.hi, posts.lo); // disjoint, adjacent ranges
/// for row in net.relation("hasCreator").unwrap().iter() {
///     assert!(posts.contains(row[0]) && persons.contains(row[1]));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SocialNetwork {
    catalog: Catalog,
    relations: Vec<(&'static str, Relation)>,
}

impl SocialNetwork {
    /// Generates the network described by `config`. Deterministic in
    /// `config.seed`; rejects degenerate configurations (no persons, no tags,
    /// degree means that overflow their population) with a typed error.
    pub fn generate(config: &LdbcConfig) -> Result<SocialNetwork, DatagenError> {
        let p = config.persons;
        if p == 0 {
            return Err(DatagenError::EmptyDomain { what: "persons" });
        }
        if config.tags == 0 {
            return Err(DatagenError::EmptyDomain { what: "tags" });
        }
        if config.days == 0 {
            return Err(DatagenError::EmptyDomain { what: "days" });
        }
        // Strict degree validation (no silent clamping).
        let friend_degrees = powerlaw_degrees(p, config.avg_friends.max(1), config.seed)?;
        if config.posts_per_person >= i32::MAX as usize {
            return Err(DatagenError::DegreeOverflow {
                what: "posts_per_person",
                requested: config.posts_per_person,
                available: i32::MAX as usize,
            });
        }
        if config.tags_per_post > config.tags {
            return Err(DatagenError::DegreeOverflow {
                what: "tags_per_post",
                requested: config.tags_per_post,
                available: config.tags,
            });
        }

        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1db3_c5d7_9b25_4aef);

        // ---- knows: Chung–Lu pairing over the heavy-tailed degree sequence.
        // Each person enters a pool once per unit of degree; pairing uniform
        // pool entries makes popular people attract popular friends.
        let mut pool: Vec<u32> = Vec::new();
        for (i, &d) in friend_degrees.iter().enumerate() {
            pool.extend(std::iter::repeat_n(i as u32, d as usize));
        }
        let mut friends: Vec<Vec<u32>> = vec![Vec::new(); p];
        let target_edges = pool.len() / 2;
        for _ in 0..target_edges {
            let a = pool[rng.gen_range(0..pool.len())];
            let b = pool[rng.gen_range(0..pool.len())];
            if a != b && !friends[a as usize].contains(&b) {
                friends[a as usize].push(b);
                friends[b as usize].push(a);
            }
        }

        // ---- posts: heavy-tailed per-person counts; creation days cluster in
        // the creator's activity window.
        let post_counts = powerlaw_degrees(
            p.max(config.posts_per_person.max(1) + 1),
            config.posts_per_person.max(1),
            config.seed ^ 0x9e37_79b9,
        )?;
        let home_day: Vec<usize> = (0..p).map(|_| rng.gen_range(0..config.days)).collect();
        let total_posts: usize = post_counts.iter().take(p).map(|&c| c as usize).sum();

        // Id layout: persons, then posts, then tags, then days — adjacent,
        // disjoint ranges in one i64 space.
        let person_base = 0i64;
        let post_base = person_base + p as i64;
        let tag_base = post_base + total_posts as i64;
        let day_base = tag_base + config.tags as i64;

        let day_of = |d: usize| day_base + d as i64;

        let mut post_rows: Vec<Vec<i64>> = Vec::with_capacity(total_posts);
        let mut creator_rows: Vec<Vec<i64>> = Vec::with_capacity(total_posts);
        // Per-person post ids and per-post creation day (indexed by post offset).
        let mut posts_of: Vec<Vec<i64>> = vec![Vec::new(); p];
        let mut post_day: Vec<usize> = Vec::with_capacity(total_posts);
        let mut next_post = post_base;
        for person in 0..p {
            for _ in 0..post_counts[person] {
                // Activity window: within 8 days of the home day, wrapped.
                let day = (home_day[person] + rng.gen_range(0..8usize)) % config.days;
                post_rows.push(vec![next_post, day_of(day)]);
                creator_rows.push(vec![next_post, person as i64]);
                posts_of[person].push(next_post);
                post_day.push(day);
                next_post += 1;
            }
        }

        // ---- likes: biased toward friends' posts; like-day trails the post's
        // creation day by a geometric-ish delay (temporal correlation).
        let mut like_rows: Vec<Vec<i64>> = Vec::with_capacity(p * config.likes_per_person);
        for person in 0..p {
            for _ in 0..config.likes_per_person {
                let post = if !friends[person].is_empty() && rng.gen_bool(0.6) {
                    let f = friends[person][rng.gen_range(0..friends[person].len())] as usize;
                    if posts_of[f].is_empty() {
                        continue;
                    }
                    posts_of[f][rng.gen_range(0..posts_of[f].len())]
                } else if total_posts > 0 {
                    post_base + rng.gen_range(0..total_posts) as i64
                } else {
                    continue;
                };
                let created = post_day[(post - post_base) as usize];
                // Geometric-ish delay: mostly same-day or next-day likes.
                let mut delay = 0usize;
                while delay < 16 && rng.gen_bool(0.45) {
                    delay += 1;
                }
                let day = (created + delay).min(config.days - 1);
                like_rows.push(vec![person as i64, post, day_of(day)]);
            }
        }

        // ---- hasTag: Zipf-ish popularity — cubing a uniform draw front-loads
        // low tag indices, so a handful of tags label most posts.
        let mut tag_rows: Vec<Vec<i64>> = Vec::with_capacity(total_posts * config.tags_per_post);
        for post in 0..total_posts {
            for _ in 0..config.tags_per_post {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let t = ((u * u * u) * config.tags as f64) as usize;
                tag_rows
                    .push(vec![post_base + post as i64, tag_base + t.min(config.tags - 1) as i64]);
            }
        }

        // ---- selective samples (query parameters).
        let keep = |rng: &mut StdRng, s: u32| rng.gen_bool(1.0 / s.max(1) as f64);
        let tag_sample: Vec<i64> = (0..config.tags as i64)
            .filter(|_| keep(&mut rng, config.tag_selectivity))
            .map(|t| tag_base + t)
            .collect();
        let person_sample: Vec<i64> =
            (0..p as i64).filter(|_| keep(&mut rng, config.person_selectivity)).collect();

        let knows_rows: Vec<Vec<i64>> = friends
            .iter()
            .enumerate()
            .flat_map(|(a, ns)| ns.iter().map(move |&b| vec![a as i64, b as i64]))
            .collect();

        let relations: Vec<(&'static str, Relation)> = vec![
            ("person", Relation::from_values(0..p as i64)),
            ("knows", Relation::from_rows(2, knows_rows)),
            ("post", Relation::from_rows(2, post_rows)),
            ("hasCreator", Relation::from_rows(2, creator_rows)),
            ("likes", Relation::from_rows(3, like_rows)),
            ("tag", Relation::from_values(tag_base..tag_base + config.tags as i64)),
            ("hasTag", Relation::from_rows(2, tag_rows)),
            ("tagSample", Relation::from_values(tag_sample)),
            ("personSample", Relation::from_values(person_sample)),
        ];

        use EntityKind::{Day, Person, Post, Tag};
        let columns: Vec<(&'static str, Vec<EntityKind>)> = vec![
            ("person", vec![Person]),
            ("knows", vec![Person, Person]),
            ("post", vec![Post, Day]),
            ("hasCreator", vec![Post, Person]),
            ("likes", vec![Person, Post, Day]),
            ("tag", vec![Tag]),
            ("hasTag", vec![Post, Tag]),
            ("tagSample", vec![Tag]),
            ("personSample", vec![Person]),
        ];
        let metas = relations
            .iter()
            .zip(columns)
            .map(|((name, rel), (meta_name, cols))| {
                debug_assert_eq!(*name, meta_name);
                debug_assert_eq!(rel.arity(), cols.len());
                RelationMeta { name, columns: cols, rows: rel.len() }
            })
            .collect();

        let catalog = Catalog {
            persons: Domain { lo: person_base, hi: post_base },
            posts: Domain { lo: post_base, hi: tag_base },
            tags: Domain { lo: tag_base, hi: day_base },
            days: Domain { lo: day_base, hi: day_base + config.days as i64 },
            relations: metas,
        };
        Ok(SocialNetwork { catalog, relations })
    }

    /// The schema description: arities, typed columns, id domains.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All `(name, relation)` pairs, ready for `Database::add_relation`.
    pub fn relations(&self) -> &[(&'static str, Relation)] {
        &self.relations
    }

    /// One relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.iter().find(|(n, _)| *n == name).map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SocialNetwork {
        SocialNetwork::generate(&LdbcConfig::default()).unwrap()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = small();
        let b = small();
        for ((na, ra), (nb, rb)) in a.relations().iter().zip(b.relations()) {
            assert_eq!(na, nb);
            assert_eq!(ra, rb, "{na} differs across identical seeds");
        }
        let c = SocialNetwork::generate(&LdbcConfig { seed: 43, ..LdbcConfig::default() }).unwrap();
        assert_ne!(a.relation("knows"), c.relation("knows"));
    }

    #[test]
    fn domains_are_disjoint_and_rows_stay_inside_them() {
        let net = small();
        let cat = net.catalog();
        let kinds = [EntityKind::Person, EntityKind::Post, EntityKind::Tag, EntityKind::Day];
        for (i, &a) in kinds.iter().enumerate() {
            assert!(!cat.domain(a).is_empty(), "{a:?} domain empty");
            for &b in &kinds[i + 1..] {
                let (da, db) = (cat.domain(a), cat.domain(b));
                assert!(da.hi <= db.lo || db.hi <= da.lo, "{a:?} and {b:?} overlap");
            }
        }
        for meta in cat.relations() {
            let rel = net.relation(meta.name).unwrap();
            assert_eq!(rel.arity(), meta.arity(), "{}", meta.name);
            assert_eq!(rel.len(), meta.rows, "{}", meta.name);
            for row in rel.iter() {
                for (col, &kind) in meta.columns.iter().enumerate() {
                    assert!(
                        cat.domain(kind).contains(row[col]),
                        "{}[{col}] = {} outside its {kind:?} domain",
                        meta.name,
                        row[col]
                    );
                }
            }
        }
    }

    #[test]
    fn knows_is_symmetric_and_degree_skewed() {
        let net = small();
        let knows = net.relation("knows").unwrap();
        let rows: std::collections::BTreeSet<(i64, i64)> =
            knows.iter().map(|r| (r[0], r[1])).collect();
        for &(a, b) in &rows {
            assert!(rows.contains(&(b, a)), "({a},{b}) present without its mirror");
        }
        // Heavy tail: the busiest person has far more friends than the mean.
        let mut deg = std::collections::BTreeMap::new();
        for &(a, _) in &rows {
            *deg.entry(a).or_insert(0usize) += 1;
        }
        let max = *deg.values().max().unwrap();
        let mean = rows.len() as f64 / deg.len() as f64;
        assert!(max as f64 > 3.0 * mean, "max degree {max} vs mean {mean}: no skew");
    }

    #[test]
    fn likes_never_precede_the_post_creation_day() {
        let net = small();
        let post_days: std::collections::BTreeMap<i64, i64> =
            net.relation("post").unwrap().iter().map(|r| (r[0], r[1])).collect();
        let likes = net.relation("likes").unwrap();
        assert!(likes.len() > 100, "expected a dense likes relation");
        for row in likes.iter() {
            let created = post_days[&row[1]];
            assert!(row[2] >= created, "like on day {} of a post created day {created}", row[2]);
        }
    }

    #[test]
    fn tag_popularity_is_skewed() {
        let net = small();
        let mut counts = std::collections::BTreeMap::new();
        for row in net.relation("hasTag").unwrap().iter() {
            *counts.entry(row[1]).or_insert(0usize) += 1;
        }
        let total: usize = counts.values().sum();
        let top: usize = {
            let mut v: Vec<usize> = counts.values().copied().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.iter().take(v.len().div_ceil(10)).sum()
        };
        // The top decile of tags should label well over their uniform share.
        assert!(top * 3 > total, "top-decile share {top}/{total} is not skewed");
    }

    #[test]
    fn every_post_has_exactly_one_creator() {
        let net = small();
        let creators = net.relation("hasCreator").unwrap();
        let posts = net.relation("post").unwrap();
        assert_eq!(creators.len(), posts.len());
        let distinct: std::collections::BTreeSet<i64> = creators.iter().map(|r| r[0]).collect();
        assert_eq!(distinct.len(), creators.len(), "a post with two creators");
    }

    #[test]
    fn degenerate_configs_are_rejected_with_typed_errors() {
        let base = LdbcConfig::default();
        let err = SocialNetwork::generate(&LdbcConfig { persons: 0, ..base.clone() }).unwrap_err();
        assert_eq!(err, DatagenError::EmptyDomain { what: "persons" });
        let err = SocialNetwork::generate(&LdbcConfig { tags: 0, ..base.clone() }).unwrap_err();
        assert_eq!(err, DatagenError::EmptyDomain { what: "tags" });
        let err = SocialNetwork::generate(&LdbcConfig { days: 0, ..base.clone() }).unwrap_err();
        assert_eq!(err, DatagenError::EmptyDomain { what: "days" });
        let err =
            SocialNetwork::generate(&LdbcConfig { persons: 4, avg_friends: 9, ..base.clone() })
                .unwrap_err();
        assert!(matches!(err, DatagenError::DegreeOverflow { what: "avg_degree", .. }));
        let err =
            SocialNetwork::generate(&LdbcConfig { tags: 3, tags_per_post: 5, ..base }).unwrap_err();
        assert!(matches!(err, DatagenError::DegreeOverflow { what: "tags_per_post", .. }));
    }
}
