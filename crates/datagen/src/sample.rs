//! Random node samples (`v1`, `v2`, …).
//!
//! Several benchmark queries restrict some pattern vertices to random node samples.
//! The paper creates a sample by keeping each node with probability `1/s`, where `s`
//! is called the *selectivity* (Section 5.1): selectivity 10 keeps roughly 10% of the
//! nodes, selectivity 1000 roughly 0.1%. Different samples of the same graph use
//! different seeds so `v1` and `v2` are independent draws, and the whole process is
//! deterministic per (graph size, selectivity, seed).

use crate::error::DatagenError;
use gj_storage::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one node sample with the given selectivity (`1/selectivity` keep
/// probability) over node ids `0..num_nodes`.
pub fn node_sample(num_nodes: usize, selectivity: u32, seed: u64) -> Relation {
    assert!(selectivity >= 1, "selectivity must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let p = 1.0 / selectivity as f64;
    let values = (0..num_nodes as i64).filter(|_| rng.gen_bool(p));
    Relation::from_values(values)
}

/// Draws the `k` independent samples `v1 … vk` a query needs, returning
/// `(name, relation)` pairs ready to be added to an
/// `Instance` (in `gj-query`).
pub fn sample_relations(
    num_nodes: usize,
    selectivity: u32,
    k: usize,
    seed: u64,
) -> Vec<(String, Relation)> {
    (0..k)
        .map(|i| {
            let name = format!("v{}", i + 1);
            let rel =
                node_sample(num_nodes, selectivity, seed.wrapping_add(i as u64 * 0x9e37_79b9));
            (name, rel)
        })
        .collect()
}

/// Draws a heavy-tailed per-node degree sequence with the given mean: each
/// degree is `avg_degree` scaled by a powerlaw-ish factor (the inverse-square
/// of a uniform draw, capped), then clamped into `[1, num_nodes - 1]` — the
/// hard cap every *simple*-graph degree must respect.
///
/// Degree parameters that cannot fit the requested node count are **rejected
/// with a typed error** instead of silently clamped: `avg_degree >=
/// num_nodes` would force every node to exceed the `num_nodes - 1` simple-graph
/// ceiling, so the sequence the caller asked for does not exist. (The clamp
/// above only tames the *tail* of the distribution; the mean the caller
/// requested stays honest.)
pub fn powerlaw_degrees(
    num_nodes: usize,
    avg_degree: usize,
    seed: u64,
) -> Result<Vec<u32>, DatagenError> {
    if num_nodes == 0 {
        return Err(DatagenError::EmptyDomain { what: "num_nodes" });
    }
    if avg_degree >= num_nodes {
        return Err(DatagenError::DegreeOverflow {
            what: "avg_degree",
            requested: avg_degree,
            available: num_nodes,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = (num_nodes - 1) as f64;
    let degrees = (0..num_nodes)
        .map(|_| {
            // u^-0.5 has mean 2 on (0, 1]: heavy tail, finite mean. Halving
            // recentres the sequence on `avg_degree`.
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let skew = 0.5 / u.max(1e-12).sqrt();
            (avg_degree as f64 * skew).round().clamp(1.0, cap) as u32
        })
        .collect();
    Ok(degrees)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_tracks_the_selectivity() {
        let n = 50_000;
        for s in [8u32, 80, 1000] {
            let sample = node_sample(n, s, 42);
            let expected = n as f64 / s as f64;
            let got = sample.len() as f64;
            assert!(
                (got - expected).abs() < expected * 0.2 + 20.0,
                "selectivity {s}: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn selectivity_one_keeps_everything() {
        let sample = node_sample(100, 1, 7);
        assert_eq!(sample.len(), 100);
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        assert_eq!(node_sample(1000, 10, 5), node_sample(1000, 10, 5));
        assert_ne!(node_sample(1000, 10, 5), node_sample(1000, 10, 6));
    }

    #[test]
    fn multiple_samples_are_independent_draws() {
        let samples = sample_relations(5000, 10, 4, 99);
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].0, "v1");
        assert_eq!(samples[3].0, "v4");
        // Different seeds per sample -> almost surely different contents.
        assert_ne!(samples[0].1, samples[1].1);
    }

    #[test]
    fn sample_values_are_valid_node_ids() {
        let n = 300;
        let sample = node_sample(n, 3, 1);
        for row in sample.iter() {
            assert!(row[0] >= 0 && row[0] < n as i64);
        }
    }

    #[test]
    fn powerlaw_degrees_track_the_mean_and_stay_simple_graph_legal() {
        let n = 20_000;
        let avg = 8usize;
        let degrees = powerlaw_degrees(n, avg, 7).unwrap();
        assert_eq!(degrees.len(), n);
        let mean = degrees.iter().map(|&d| d as f64).sum::<f64>() / n as f64;
        assert!((mean - avg as f64).abs() < avg as f64 * 0.5, "mean degree {mean} vs {avg}");
        assert!(degrees.iter().all(|&d| d >= 1 && (d as usize) < n));
        // Heavy tail: the max degree dwarfs the mean.
        let max = *degrees.iter().max().unwrap() as f64;
        assert!(max > 4.0 * mean, "max {max} vs mean {mean}: no skew");
        // Deterministic per seed.
        assert_eq!(degrees, powerlaw_degrees(n, avg, 7).unwrap());
        assert_ne!(degrees, powerlaw_degrees(n, avg, 8).unwrap());
    }

    #[test]
    fn degree_overflow_is_a_typed_error_not_a_clamp() {
        // avg_degree == num_nodes can never fit a simple graph: typed rejection.
        let err = powerlaw_degrees(10, 10, 1).unwrap_err();
        assert_eq!(
            err,
            DatagenError::DegreeOverflow { what: "avg_degree", requested: 10, available: 10 }
        );
        assert!(powerlaw_degrees(10, 25, 1).is_err());
        let err = powerlaw_degrees(0, 1, 1).unwrap_err();
        assert_eq!(err, DatagenError::EmptyDomain { what: "num_nodes" });
        // The largest legal mean still works.
        assert!(powerlaw_degrees(10, 9, 1).is_ok());
    }
}
