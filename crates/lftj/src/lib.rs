//! # gj-lftj
//!
//! LeapFrog TrieJoin (LFTJ) — the worst-case optimal multiway join algorithm of
//! Veldhuizen, as used inside LogicBlox and described in Section 2.2 / Algorithm 1 of
//! the paper.
//!
//! LFTJ processes the query variables one at a time in the global attribute order.
//! For the current variable it intersects, by *leapfrogging*, the sorted value lists
//! exposed by the trie iterators of every atom that contains the variable; for each
//! value in the intersection it descends into the next variable, and it backtracks
//! when a level is exhausted. Its running time is `Õ(N + AGM(Q))` for every query —
//! worst-case optimal — which is what lets it avoid the exploding intermediate
//! results that pairwise (Selinger-style) plans materialise on cyclic graph patterns.
//!
//! The public entry points are [`LftjExecutor`], [`count`], [`enumerate`], [`run`]
//! and [`try_run`] (early termination); all of them consume a
//! [`BoundQuery`](gj_query::BoundQuery) (query + GAO + GAO-consistent trie indexes)
//! from `gj-query`. For parallel execution, [`LftjMorsels`] plugs the executor into
//! the `gj-runtime` morsel driver: each worker thread reuses **one** executor
//! across every morsel it claims ([`LftjExecutor::run_range`] range-restricts the
//! root-level intersection without consuming the executor; [`LftjWorker`] carries
//! it plus the re-ordering scratch row).

pub mod executor;
pub mod leapfrog;
pub mod parallel;

pub use executor::{count, enumerate, run, try_run, LftjExecutor, LftjStats};
pub use leapfrog::LeapfrogJoin;
pub use parallel::{LftjMorsels, LftjWorker};
