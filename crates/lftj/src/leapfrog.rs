//! Unary leapfrog intersection.
//!
//! The heart of LeapFrog TrieJoin: given `k` trie iterators positioned at the same
//! trie level, enumerate the intersection of their (sorted) value lists by repeatedly
//! seeking the iterator with the smallest key to the current maximum key — each miss
//! "leapfrogs" over a swath of values that cannot participate in the join.
//!
//! The iterators themselves live in the executor (one per atom); [`LeapfrogJoin`]
//! only stores which iterators participate at this level and the rotation state, and
//! receives the iterator storage as an argument on every call. That keeps the borrow
//! structure simple while matching the classic presentation (leapfrog-init /
//! leapfrog-search / leapfrog-next / leapfrog-seek).

use gj_storage::{TrieIterator, Val};

/// Leapfrog intersection state over a subset of the executor's trie iterators.
#[derive(Debug, Clone)]
pub struct LeapfrogJoin {
    /// Indices (into the executor's iterator vector) of the participating atoms,
    /// reordered by key during `init`.
    participants: Vec<usize>,
    /// Cached current key of each participant (parallel to `participants`), so the
    /// search loop touches the trie level arrays only when an iterator actually
    /// moves, never to re-read a key it already knows.
    keys: Vec<Val>,
    /// Rotation pointer: the participant currently holding the smallest key.
    p: usize,
    /// Whether the intersection is exhausted.
    at_end: bool,
    /// The key of the current match (valid when `!at_end` after a successful search).
    key: Val,
}

impl LeapfrogJoin {
    /// Creates a leapfrog join over the given participant iterator indices.
    /// `participants` must be non-empty.
    pub fn new(participants: Vec<usize>) -> Self {
        assert!(!participants.is_empty(), "leapfrog join needs at least one iterator");
        let keys = vec![0; participants.len()];
        LeapfrogJoin { participants, keys, p: 0, at_end: false, key: 0 }
    }

    /// The participating iterator indices (in current rotation order).
    pub fn participants(&self) -> &[usize] {
        &self.participants
    }

    /// Whether the intersection is exhausted.
    pub fn at_end(&self) -> bool {
        self.at_end
    }

    /// The current match value. Only meaningful when `!at_end()`.
    pub fn key(&self) -> Val {
        self.key
    }

    /// Branch-free-wrap successor of a rotation position (`% k` costs a hardware
    /// divide on every rotation step; the compare compiles to a conditional move).
    #[inline]
    fn rotate(p: usize, k: usize) -> usize {
        if p + 1 == k {
            0
        } else {
            p + 1
        }
    }

    /// `leapfrog-init`: to be called when every participating iterator has just been
    /// opened at this level. Establishes the rotation order and finds the first match.
    pub fn init(&mut self, iters: &mut [TrieIterator<'_>]) {
        if self.participants.iter().any(|&i| iters[i].at_end()) {
            self.at_end = true;
            return;
        }
        self.at_end = false;
        self.participants.sort_by_key(|&i| iters[i].key());
        self.keys.clear();
        self.keys.extend(self.participants.iter().map(|&i| iters[i].key()));
        self.p = 0;
        self.search(iters);
    }

    /// `leapfrog-search`: advances iterators until all participants agree on a key
    /// (a match) or one of them is exhausted. Keys move only forward, so the cached
    /// key of the participant before `p` is the current maximum — no re-read of the
    /// max key after a `seek` is ever needed.
    pub fn search(&mut self, iters: &mut [TrieIterator<'_>]) {
        let k = self.participants.len();
        let mut max_key = self.keys[if self.p == 0 { k - 1 } else { self.p - 1 }];
        loop {
            let cur = self.keys[self.p];
            if cur == max_key {
                self.key = cur;
                return;
            }
            let idx = self.participants[self.p];
            iters[idx].seek(max_key);
            if iters[idx].at_end() {
                self.at_end = true;
                return;
            }
            max_key = iters[idx].key();
            self.keys[self.p] = max_key;
            self.p = Self::rotate(self.p, k);
        }
    }

    /// `leapfrog-next`: moves past the current match to the next one.
    pub fn next(&mut self, iters: &mut [TrieIterator<'_>]) {
        assert!(!self.at_end, "next() on an exhausted leapfrog join");
        let idx = self.participants[self.p];
        iters[idx].next();
        if iters[idx].at_end() {
            self.at_end = true;
        } else {
            self.keys[self.p] = iters[idx].key();
            self.p = Self::rotate(self.p, self.participants.len());
            self.search(iters);
        }
    }

    /// `leapfrog-seek`: moves to the first match with key `>= v`.
    pub fn seek(&mut self, v: Val, iters: &mut [TrieIterator<'_>]) {
        assert!(!self.at_end, "seek() on an exhausted leapfrog join");
        if self.key >= v {
            return;
        }
        let idx = self.participants[self.p];
        iters[idx].seek(v);
        if iters[idx].at_end() {
            self.at_end = true;
        } else {
            self.keys[self.p] = iters[idx].key();
            self.p = Self::rotate(self.p, self.participants.len());
            self.search(iters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_storage::{Relation, TrieIndex};

    /// Opens level 0 of each index and collects the full leapfrog intersection.
    fn intersect(lists: &[&[Val]]) -> Vec<Val> {
        let indexes: Vec<TrieIndex> = lists
            .iter()
            .map(|vs| TrieIndex::build_natural(&Relation::from_values(vs.to_vec())))
            .collect();
        let mut iters: Vec<TrieIterator> = indexes.iter().map(TrieIndex::iter).collect();
        for it in &mut iters {
            it.open();
        }
        let mut lf = LeapfrogJoin::new((0..iters.len()).collect());
        lf.init(&mut iters);
        let mut out = Vec::new();
        while !lf.at_end() {
            out.push(lf.key());
            lf.next(&mut iters);
        }
        out
    }

    #[test]
    fn intersection_of_the_classic_example() {
        // The example from Veldhuizen's paper.
        let a: &[Val] = &[0, 1, 3, 4, 5, 6, 7, 8, 9, 11];
        let b: &[Val] = &[0, 2, 6, 7, 8, 9];
        let c: &[Val] = &[2, 4, 5, 8, 10];
        assert_eq!(intersect(&[a, b, c]), vec![8]);
    }

    #[test]
    fn disjoint_lists_intersect_empty() {
        assert_eq!(intersect(&[&[1, 3, 5], &[2, 4, 6]]), Vec::<Val>::new());
    }

    #[test]
    fn identical_lists_intersect_to_themselves() {
        assert_eq!(intersect(&[&[1, 5, 9], &[1, 5, 9]]), vec![1, 5, 9]);
    }

    #[test]
    fn single_iterator_is_identity() {
        assert_eq!(intersect(&[&[2, 4, 8]]), vec![2, 4, 8]);
    }

    #[test]
    fn empty_input_list_gives_empty_intersection() {
        assert_eq!(intersect(&[&[1, 2, 3], &[]]), Vec::<Val>::new());
    }

    #[test]
    fn seek_skips_ahead_within_intersection() {
        let lists: Vec<&[Val]> = vec![&[1, 2, 3, 4, 5, 6, 7, 8], &[2, 4, 6, 8]];
        let indexes: Vec<TrieIndex> = lists
            .iter()
            .map(|vs| TrieIndex::build_natural(&Relation::from_values(vs.to_vec())))
            .collect();
        let mut iters: Vec<TrieIterator> = indexes.iter().map(TrieIndex::iter).collect();
        for it in &mut iters {
            it.open();
        }
        let mut lf = LeapfrogJoin::new(vec![0, 1]);
        lf.init(&mut iters);
        assert_eq!(lf.key(), 2);
        lf.seek(5, &mut iters);
        assert_eq!(lf.key(), 6);
        lf.seek(9, &mut iters);
        assert!(lf.at_end());
    }

    #[test]
    fn three_way_intersection_agrees_with_reference() {
        let a: Vec<Val> = (0..200).filter(|x| x % 2 == 0).collect();
        let b: Vec<Val> = (0..200).filter(|x| x % 3 == 0).collect();
        let c: Vec<Val> = (0..200).filter(|x| x % 5 == 0).collect();
        let expected: Vec<Val> = (0..200).filter(|x| x % 30 == 0).collect();
        assert_eq!(intersect(&[&a, &b, &c]), expected);
    }
}
