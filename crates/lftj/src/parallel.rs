//! LFTJ as a [`MorselSource`]: the engine half of parallel LeapFrog TrieJoin.
//!
//! The `gj-runtime` morsel driver partitions the first GAO attribute into ranges;
//! this adapter runs the query restricted to each range with
//! [`run_range`](LftjExecutor::run_range) and emits each output binding re-ordered
//! into **variable-id order** (the sink protocol's row shape). Because the executor
//! emits in lexicographic GAO order and morsels tile the first attribute in
//! increasing order, the runtime's ordered merge reproduces the exact serial
//! emission stream.
//!
//! Per-worker state mirrors Minesweeper's `MsWorker` pattern: each worker thread
//! builds **one** [`LftjExecutor`] and carries it
//! across every morsel it claims — the trie iterators, cached participant lists
//! and filter tables are reused instead of being rebuilt per job — plus the
//! variable-order scratch row. An ablation test below checks that the reused
//! executor is behaviourally identical (same rows, same per-morsel result and
//! exploration counts) to building a fresh executor per morsel.
//!
//! The runtime's worker lifecycle hooks are adopted too: each worker accumulates
//! its [`LftjStats`] across the morsels it ran, and `retire_worker` folds them
//! into run totals ([`LftjMorsels::total_bindings_explored`]) when the worker
//! loop ends — so parallel executions report the same `bindings_explored`
//! statistic serial ones do.

use crate::executor::{LftjExecutor, LftjStats};
use gj_query::BoundQuery;
use gj_runtime::{ExecCtx, Morsel, MorselSource};
use gj_storage::Val;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

/// A bound query exposed to the parallel runtime through LFTJ.
#[derive(Debug)]
pub struct LftjMorsels<'a> {
    bq: &'a BoundQuery,
    /// Bindings explored, folded from retired workers (the `retire_worker` hook).
    bindings_explored: AtomicU64,
}

/// Per-worker state of [`LftjMorsels`]: one executor reused across every claimed
/// morsel, the GAO → variable-id scratch row, and the worker's accumulated
/// statistics.
pub struct LftjWorker<'a> {
    exec: LftjExecutor<'a>,
    scratch: Vec<Val>,
    totals: LftjStats,
}

impl LftjWorker<'_> {
    /// The statistics accumulated over every morsel this worker ran.
    pub fn totals(&self) -> LftjStats {
        self.totals
    }
}

impl<'a> LftjMorsels<'a> {
    /// Wraps a bound query for morsel-driven execution.
    pub fn new(bq: &'a BoundQuery) -> Self {
        LftjMorsels { bq, bindings_explored: AtomicU64::new(0) }
    }

    /// Total bindings explored, summed over every retired worker — available once
    /// `gj_runtime::drive` returned (all workers are retired by then).
    pub fn total_bindings_explored(&self) -> u64 {
        self.bindings_explored.load(Ordering::Relaxed)
    }
}

impl<'a> MorselSource for LftjMorsels<'a> {
    type Worker = LftjWorker<'a>;

    fn worker(&self) -> LftjWorker<'a> {
        LftjWorker {
            exec: LftjExecutor::new(self.bq),
            scratch: vec![0; self.bq.num_vars()],
            totals: LftjStats::default(),
        }
    }

    fn run_morsel(
        &self,
        worker: &mut LftjWorker<'a>,
        morsel: Morsel,
        ctx: &ExecCtx<'_>,
        emit: &mut dyn FnMut(&[Val]) -> ControlFlow<()>,
    ) {
        let gao = &self.bq.gao;
        let LftjWorker { exec, scratch, totals } = worker;
        let stats = exec.run_range_ctx(morsel.lo, morsel.hi, ctx, &mut |binding| {
            for (pos, &v) in gao.iter().enumerate() {
                scratch[v] = binding[pos];
            }
            emit(scratch)
        });
        totals.results += stats.results;
        totals.bindings_explored += stats.bindings_explored;
    }

    fn count_morsel(&self, worker: &mut LftjWorker<'a>, morsel: Morsel, ctx: &ExecCtx<'_>) -> u64 {
        let stats = worker
            .exec
            .run_range_ctx(morsel.lo, morsel.hi, ctx, &mut |_| ControlFlow::Continue(()));
        worker.totals.results += stats.results;
        worker.totals.bindings_explored += stats.bindings_explored;
        stats.results
    }

    /// Folds the worker's accumulated exploration count into the run totals.
    fn retire_worker(&self, worker: LftjWorker<'a>) {
        self.bindings_explored.fetch_add(worker.totals.bindings_explored, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{CatalogQuery, Instance};
    use gj_runtime::{drive, partition_first_attribute, CollectSink, CountSink};
    use gj_storage::Graph;

    fn bound(q: &gj_query::Query) -> (Instance, gj_query::Query) {
        let g = Graph::new_undirected(8, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        for (i, step) in [2usize, 3, 5, 4].iter().enumerate() {
            let name = format!("v{}", i + 1);
            inst.add_relation(name, gj_storage::Relation::from_values((0..8).step_by(*step)));
        }
        (inst, q.clone())
    }

    #[test]
    fn parallel_lftj_matches_serial_counts_and_order() {
        let (inst, q) = bound(&CatalogQuery::ThreeClique.query());
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let serial = crate::executor::count(&bq);
        let source = LftjMorsels::new(&bq);
        let morsels = partition_first_attribute(&bq, 4);
        let mut count = CountSink::new();
        drive(&source, &morsels, 4, &mut count);
        assert_eq!(count.rows(), serial);
        let mut collect = CollectSink::new();
        drive(&source, &morsels, 2, &mut collect);
        let mut expected = Vec::new();
        crate::executor::run(&bq, &mut |b| expected.push(bq.binding_to_var_order(b)));
        assert_eq!(collect.into_rows(), expected);
    }

    /// Ablation: one executor reused across morsels (the worker behaviour) must be
    /// indistinguishable — per-morsel result counts, exploration counts, and the
    /// emitted rows — from the historical build-one-executor-per-morsel behaviour.
    #[test]
    fn reused_executor_matches_per_morsel_executors() {
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle, CatalogQuery::ThreePath] {
            let (inst, q) = bound(&cq.query());
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            let morsels = partition_first_attribute(&bq, 8);
            assert!(morsels.len() > 1, "the ablation needs a real partition");
            let mut reused = LftjExecutor::new(&bq);
            let mut total = 0;
            for m in &morsels {
                let mut fresh_rows: Vec<Val> = Vec::new();
                let fresh =
                    LftjExecutor::new(&bq).with_range0(m.lo, m.hi).try_run(&mut |binding| {
                        fresh_rows.extend_from_slice(binding);
                        ControlFlow::Continue(())
                    });
                let mut reused_rows: Vec<Val> = Vec::new();
                let stats = reused.run_range(m.lo, m.hi, &mut |binding| {
                    reused_rows.extend_from_slice(binding);
                    ControlFlow::Continue(())
                });
                assert_eq!(stats, fresh, "{} morsel {m:?}", q.name);
                assert_eq!(reused_rows, fresh_rows, "{} morsel {m:?}", q.name);
                total += stats.results;
            }
            assert_eq!(total, crate::executor::count(&bq), "{}", q.name);
        }
    }

    /// Signed domains: the morsel tiling starts at NEG_INF, so rows with negative
    /// first-attribute values are enumerated by exactly one morsel and the
    /// parallel rows stay byte-identical to the serial emission.
    #[test]
    fn negative_domains_partition_without_loss() {
        let mut inst = Instance::new();
        inst.add_relation("r", gj_storage::Relation::from_pairs((-10..10).map(|i| (i, i + 1))));
        let q = gj_query::QueryBuilder::new("2-path")
            .atom("r", &["a", "b"])
            .atom("r", &["b", "c"])
            .build();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let serial = crate::executor::count(&bq);
        assert_eq!(serial, 19, "b ranges over -9..=9");
        let morsels = partition_first_attribute(&bq, 6);
        assert!(morsels.len() > 1, "the test needs a real partition");
        assert_eq!(morsels[0].lo, gj_storage::NEG_INF);
        let mut sink = CollectSink::new();
        drive(&LftjMorsels::new(&bq), &morsels, 4, &mut sink);
        let mut expected = Vec::new();
        crate::executor::run(&bq, &mut |b| expected.push(bq.binding_to_var_order(b)));
        assert_eq!(expected.len() as u64, serial);
        assert_eq!(sink.into_rows(), expected);
    }

    /// The lifecycle hooks fold per-worker stats into run totals: the parallel
    /// exploration count equals the sum of the serial per-morsel counts.
    #[test]
    fn retired_workers_fold_bindings_explored_into_totals() {
        let (inst, q) = bound(&CatalogQuery::ThreeClique.query());
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let morsels = partition_first_attribute(&bq, 6);
        assert!(morsels.len() > 1, "the test needs a real partition");
        let expected: u64 = morsels
            .iter()
            .map(|m| {
                LftjExecutor::new(&bq)
                    .with_range0(m.lo, m.hi)
                    .try_run(&mut |_| ControlFlow::Continue(()))
                    .bindings_explored
            })
            .sum();
        for threads in [1, 3] {
            let source = LftjMorsels::new(&bq);
            let mut sink = CountSink::new();
            drive(&source, &morsels, threads, &mut sink);
            assert_eq!(source.total_bindings_explored(), expected, "threads {threads}");
        }
    }

    /// Early termination inside one morsel must not poison the reused executor for
    /// the next morsel.
    #[test]
    fn reuse_survives_early_termination() {
        let (inst, q) = bound(&CatalogQuery::ThreePath.query());
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let morsels = partition_first_attribute(&bq, 6);
        let mut exec = LftjExecutor::new(&bq);
        // Break immediately in the first morsel ...
        let stats = exec.run_range(morsels[0].lo, morsels[0].hi, &mut |_| ControlFlow::Break(()));
        assert!(stats.results <= 1);
        // ... then run every morsel to completion: totals must still be exact.
        let total: u64 = morsels
            .iter()
            .map(|m| exec.run_range(m.lo, m.hi, &mut |_| ControlFlow::Continue(())).results)
            .sum();
        assert_eq!(total, crate::executor::count(&bq));
    }
}
