//! LFTJ as a [`MorselSource`]: the engine half of parallel LeapFrog TrieJoin.
//!
//! The `gj-runtime` morsel driver partitions the first GAO attribute into ranges;
//! this adapter runs one [`LftjExecutor`] per morsel with
//! [`with_range0`](LftjExecutor::with_range0) restricting the root-level leapfrog
//! intersection, and emits each output binding re-ordered into **variable-id order**
//! (the sink protocol's row shape). Because the executor emits in lexicographic GAO
//! order and morsels tile the first attribute in increasing order, the runtime's
//! ordered merge reproduces the exact serial emission stream.
//!
//! Per-worker state is just the variable-order scratch row: an [`LftjExecutor`] is
//! cheap to construct (iterator handles over `Arc`-shared tries), so one is built
//! per morsel.

use crate::executor::LftjExecutor;
use gj_query::BoundQuery;
use gj_runtime::{Morsel, MorselSource};
use gj_storage::Val;
use std::ops::ControlFlow;

/// A bound query exposed to the parallel runtime through LFTJ.
#[derive(Debug, Clone, Copy)]
pub struct LftjMorsels<'a> {
    bq: &'a BoundQuery,
}

impl<'a> LftjMorsels<'a> {
    /// Wraps a bound query for morsel-driven execution.
    pub fn new(bq: &'a BoundQuery) -> Self {
        LftjMorsels { bq }
    }
}

impl MorselSource for LftjMorsels<'_> {
    /// Scratch row for the GAO → variable-id re-ordering.
    type Worker = Vec<Val>;

    fn worker(&self) -> Vec<Val> {
        vec![0; self.bq.num_vars()]
    }

    fn run_morsel(
        &self,
        scratch: &mut Vec<Val>,
        morsel: Morsel,
        emit: &mut dyn FnMut(&[Val]) -> ControlFlow<()>,
    ) {
        let gao = &self.bq.gao;
        LftjExecutor::new(self.bq).with_range0(morsel.lo, morsel.hi).try_run(&mut |binding| {
            for (pos, &v) in gao.iter().enumerate() {
                scratch[v] = binding[pos];
            }
            emit(scratch)
        });
    }

    fn count_morsel(&self, _scratch: &mut Vec<Val>, morsel: Morsel) -> u64 {
        LftjExecutor::new(self.bq).with_range0(morsel.lo, morsel.hi).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{CatalogQuery, Instance};
    use gj_runtime::{drive, partition_first_attribute, CollectSink, CountSink};
    use gj_storage::Graph;

    fn bound(q: &gj_query::Query) -> (Instance, gj_query::Query) {
        let g = Graph::new_undirected(8, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        (inst, q.clone())
    }

    #[test]
    fn parallel_lftj_matches_serial_counts_and_order() {
        let (inst, q) = bound(&CatalogQuery::ThreeClique.query());
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let serial = crate::executor::count(&bq);
        let source = LftjMorsels::new(&bq);
        let morsels = partition_first_attribute(&bq, 4);
        let mut count = CountSink::new();
        drive(&source, &morsels, 4, &mut count);
        assert_eq!(count.rows(), serial);
        let mut collect = CollectSink::new();
        drive(&source, &morsels, 2, &mut collect);
        let mut expected = Vec::new();
        crate::executor::run(&bq, &mut |b| expected.push(bq.binding_to_var_order(b)));
        assert_eq!(collect.into_rows(), expected);
    }
}
