//! The LeapFrog TrieJoin executor (Algorithm 1 of the paper, iterator formulation).
//!
//! For each variable in the GAO, the executor opens the trie iterators of every atom
//! containing that variable, intersects their value lists with
//! [`LeapfrogJoin`], and recurses on each match; the
//! recursion bottoming out at the last variable yields an output tuple.
//!
//! Order filters (`x < y`, used by the clique/cycle queries to report each pattern
//! once) are pushed into the search: the filter's lower bound is applied with a
//! leapfrog `seek`, and its upper bound truncates the scan of the current level.

use crate::leapfrog::LeapfrogJoin;
use gj_query::BoundQuery;
use gj_runtime::{ExecCtx, ExecWatch};
use gj_storage::{TrieIterator, Val};
use std::ops::ControlFlow;

/// Execution statistics, mostly for the benchmark harness and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LftjStats {
    /// Number of output tuples produced (after filters).
    pub results: u64,
    /// Number of variable bindings explored (matches found at any level).
    pub bindings_explored: u64,
}

/// LeapFrog TrieJoin executor over a [`BoundQuery`].
pub struct LftjExecutor<'a> {
    bq: &'a BoundQuery,
    iters: Vec<TrieIterator<'a>>,
    /// Per GAO position: indices of the atoms whose iterator participates.
    participants: Vec<Vec<usize>>,
    /// Per GAO position: filters `(earlier_gao_pos, earlier_is_smaller)`.
    filters: Vec<Vec<(usize, bool)>>,
    binding: Vec<Val>,
    stats: LftjStats,
    /// Restriction of the first GAO attribute to `[lo, hi)` (parallel partitioning).
    range0: Option<(Val, Val)>,
}

impl<'a> LftjExecutor<'a> {
    /// Prepares an executor for the bound query.
    ///
    /// Panics if some query variable is contained in no atom (such a query has no
    /// well-defined finite answer).
    pub fn new(bq: &'a BoundQuery) -> Self {
        let n = bq.num_vars();
        let participants: Vec<Vec<usize>> = (0..n).map(|pos| bq.atoms_at_gao_pos(pos)).collect();
        for (pos, parts) in participants.iter().enumerate() {
            assert!(
                !parts.is_empty(),
                "variable {} is not contained in any atom",
                bq.query.var_names[bq.gao[pos]]
            );
        }
        let iters = bq.atoms.iter().map(|a| a.index.iter()).collect();
        LftjExecutor {
            bq,
            iters,
            participants,
            filters: bq.filters_by_gao_pos(),
            binding: vec![0; n],
            stats: LftjStats::default(),
            range0: None,
        }
    }

    /// Restricts the search to bindings whose first GAO attribute lies in `[lo, hi)`
    /// — the morsel partitioning used by the parallel runtime (Section 4.10 applied
    /// to LFTJ): the root-level leapfrog intersection seeks to `lo` and stops at
    /// `hi`, so disjoint ranges enumerate disjoint output slices.
    pub fn with_range0(mut self, lo: Val, hi: Val) -> Self {
        self.range0 = Some((lo, hi));
        self
    }

    /// Runs the join, invoking `emit` with each output binding (indexed by GAO
    /// position). Returns the execution statistics.
    pub fn run<F: FnMut(&[Val])>(self, emit: &mut F) -> LftjStats {
        self.try_run(&mut |binding| {
            emit(binding);
            ControlFlow::Continue(())
        })
    }

    /// Runs the join with early termination: `emit` returns
    /// [`ControlFlow::Break`] to stop the search immediately (e.g. once a sink has
    /// collected enough rows, or to answer an existence check after the first
    /// output). Returns the statistics accumulated up to the stop point.
    pub fn try_run<F: FnMut(&[Val]) -> ControlFlow<()>>(self, emit: &mut F) -> LftjStats {
        self.try_run_ctx(&ExecCtx::none(), emit)
    }

    /// [`try_run`](Self::try_run) under an execution context: the search
    /// additionally polls `ctx` once per explored binding (at the coarse
    /// [`CHECK_STRIDE`](gj_runtime::CHECK_STRIDE)) and unwinds cleanly when a
    /// cancel, deadline, or stop flag trips — the caller learns the reason from
    /// the context's monitor.
    pub fn try_run_ctx<F: FnMut(&[Val]) -> ControlFlow<()>>(
        mut self,
        ctx: &ExecCtx<'_>,
        emit: &mut F,
    ) -> LftjStats {
        self.execute(ctx, emit)
    }

    /// Runs the join restricted to first-GAO-attribute values in `[lo, hi)`
    /// **without consuming the executor** — the per-worker reuse primitive of the
    /// parallel runtime. A worker builds one executor and calls `run_range` for
    /// every morsel it claims: the trie iterators, participant lists, and filter
    /// tables are carried across calls (a completed or early-terminated search
    /// always rewinds its iterators back to the root), and only the statistics are
    /// reset per range. The result is identical to running a fresh
    /// [`with_range0`](Self::with_range0) executor over the same range.
    pub fn run_range<F: FnMut(&[Val]) -> ControlFlow<()>>(
        &mut self,
        lo: Val,
        hi: Val,
        emit: &mut F,
    ) -> LftjStats {
        self.run_range_ctx(lo, hi, &ExecCtx::none(), emit)
    }

    /// [`run_range`](Self::run_range) under an execution context (see
    /// [`try_run_ctx`](Self::try_run_ctx)) — the form the parallel runtime calls,
    /// so stop flags and budgets are honored *inside* a long morsel, not only
    /// between morsels.
    pub fn run_range_ctx<F: FnMut(&[Val]) -> ControlFlow<()>>(
        &mut self,
        lo: Val,
        hi: Val,
        ctx: &ExecCtx<'_>,
        emit: &mut F,
    ) -> LftjStats {
        self.range0 = Some((lo, hi));
        self.execute(ctx, emit)
    }

    /// The shared search entry: resets the statistics, runs the (possibly
    /// range-restricted) search, and leaves the executor reusable — every level
    /// opened during the search is closed again on unwind, even under early
    /// termination.
    fn execute<F: FnMut(&[Val]) -> ControlFlow<()>>(
        &mut self,
        ctx: &ExecCtx<'_>,
        emit: &mut F,
    ) -> LftjStats {
        self.stats = LftjStats::default();
        if self.bq.num_vars() > 0 {
            let mut watch = ctx.watch();
            // The watched and unwatched searches are separate monomorphisations:
            // the per-binding `tick()` is cheap but the leapfrog inner loop is
            // cheaper still, so unmonitored runs (the serial fast path) must not
            // pay even that branch.
            let _ = if watch.is_inert() {
                self.search::<F, false>(0, &mut watch, emit)
            } else {
                self.search::<F, true>(0, &mut watch, emit)
            };
        }
        self.stats
    }

    /// Counts the output tuples.
    pub fn count(self) -> u64 {
        let mut n = 0u64;
        self.run(&mut |_| n += 1);
        n
    }

    /// Recursive triejoin over GAO positions `depth..n`. Propagates the emitter's
    /// `Break` up through every recursion level, so a stopped search unwinds without
    /// visiting any further binding; a tripped `watch` unwinds the same way.
    fn search<F: FnMut(&[Val]) -> ControlFlow<()>, const WATCHED: bool>(
        &mut self,
        depth: usize,
        watch: &mut ExecWatch<'_>,
        emit: &mut F,
    ) -> ControlFlow<()> {
        let parts = self.participants[depth].clone();
        for &i in &parts {
            self.iters[i].open();
        }

        let mut lf = LeapfrogJoin::new(parts.clone());
        lf.init(&mut self.iters);

        // Bounds induced by the order filters whose later variable sits at `depth`,
        // seeded at the root level with the morsel range restriction (if any).
        let mut lower: Option<Val> = None;
        let mut upper: Option<Val> = None;
        if depth == 0 {
            if let Some((lo, hi)) = self.range0 {
                lower = Some(lo);
                upper = Some(hi);
            }
        }
        for &(earlier_pos, earlier_is_smaller) in &self.filters[depth] {
            let bound = self.binding[earlier_pos];
            if earlier_is_smaller {
                lower = Some(lower.map_or(bound + 1, |l: Val| l.max(bound + 1)));
            } else {
                upper = Some(upper.map_or(bound, |u: Val| u.min(bound)));
            }
        }
        if let (Some(lb), false) = (lower, lf.at_end()) {
            lf.seek(lb, &mut self.iters);
        }

        let mut flow = ControlFlow::Continue(());
        while !lf.at_end() {
            let v = lf.key();
            if let Some(ub) = upper {
                if v >= ub {
                    break;
                }
            }
            self.binding[depth] = v;
            self.stats.bindings_explored += 1;
            if WATCHED && watch.tick() {
                flow = ControlFlow::Break(());
                break;
            }
            if depth + 1 == self.bq.num_vars() {
                self.stats.results += 1;
                flow = emit(&self.binding);
            } else {
                flow = self.search::<F, WATCHED>(depth + 1, watch, emit);
            }
            if flow.is_break() {
                break;
            }
            lf.next(&mut self.iters);
        }

        for &i in &parts {
            self.iters[i].up();
        }
        flow
    }
}

/// Counts the output of the bound query with LeapFrog TrieJoin.
pub fn count(bq: &BoundQuery) -> u64 {
    LftjExecutor::new(bq).count()
}

/// Enumerates the output of the bound query; bindings are returned **in variable-id
/// order** (not GAO order), sorted lexicographically.
pub fn enumerate(bq: &BoundQuery) -> Vec<Vec<Val>> {
    let mut out = Vec::new();
    LftjExecutor::new(bq).run(&mut |gao_binding| {
        out.push(bq.binding_to_var_order(gao_binding));
    });
    out.sort_unstable();
    out
}

/// Runs the bound query, calling `emit` for every output binding in GAO order, and
/// returns the execution statistics.
pub fn run<F: FnMut(&[Val])>(bq: &BoundQuery, emit: &mut F) -> LftjStats {
    LftjExecutor::new(bq).run(emit)
}

/// Runs the bound query with early termination: the search stops as soon as `emit`
/// returns [`ControlFlow::Break`]. Bindings are emitted in GAO order.
pub fn try_run<F: FnMut(&[Val]) -> ControlFlow<()>>(bq: &BoundQuery, emit: &mut F) -> LftjStats {
    LftjExecutor::new(bq).try_run(emit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{naive_join, CatalogQuery, Instance, QueryBuilder};
    use gj_storage::{Graph, Relation};

    fn instance_with_samples(g: &Graph, samples: &[(&str, Vec<i64>)]) -> Instance {
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        for (name, vals) in samples {
            inst.add_relation(*name, Relation::from_values(vals.clone()));
        }
        inst
    }

    fn two_triangle_graph() -> Graph {
        Graph::new_undirected(5, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4)])
    }

    #[test]
    fn triangle_count_matches_naive() {
        let g = two_triangle_graph();
        let inst = instance_with_samples(&g, &[]);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        assert_eq!(count(&bq), 2);
        assert_eq!(enumerate(&bq), naive_join(&inst, &q));
    }

    #[test]
    fn triangle_count_equals_graph_triangle_count_on_random_graph() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 60u32;
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|_| rng.gen_bool(0.15))
            .collect();
        let g = Graph::new_undirected(n as usize, edges);
        let inst = instance_with_samples(&g, &[]);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        assert_eq!(count(&bq), g.triangle_count());
    }

    #[test]
    fn all_catalog_queries_match_naive_on_small_graph() {
        let g = two_triangle_graph();
        let samples: Vec<(&str, Vec<i64>)> = vec![
            ("v1", vec![0, 1, 3]),
            ("v2", vec![2, 3, 4]),
            ("v3", vec![0, 2]),
            ("v4", vec![1, 4]),
        ];
        let inst = instance_with_samples(&g, &samples);
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            let expected = naive_join(&inst, &q);
            assert_eq!(enumerate(&bq), expected, "{}", q.name);
            assert_eq!(count(&bq), expected.len() as u64, "{}", q.name);
        }
    }

    #[test]
    fn respects_explicit_gao() {
        let g = two_triangle_graph();
        let inst = instance_with_samples(&g, &[]);
        let q = CatalogQuery::FourCycle.query();
        let naive = naive_join(&inst, &q);
        for gao in [vec![0, 1, 2, 3], vec![3, 2, 1, 0], vec![1, 3, 0, 2]] {
            let bq = BoundQuery::new(&inst, &q, Some(gao.clone())).unwrap();
            assert_eq!(enumerate(&bq), naive, "GAO {gao:?}");
        }
    }

    #[test]
    fn filters_prune_via_seek_and_break() {
        // Without filters the directed 2-cycle query would return both orders.
        let mut inst = Instance::new();
        inst.add_relation("edge", Relation::from_pairs(vec![(1, 2), (2, 1), (1, 3), (3, 1)]));
        let q = QueryBuilder::new("ordered-pair")
            .atom("edge", &["a", "b"])
            .atom("edge", &["b", "a"])
            .lt("a", "b")
            .build();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        assert_eq!(enumerate(&bq), vec![vec![1, 2], vec![1, 3]]);
    }

    #[test]
    fn empty_relation_yields_zero() {
        let mut inst = Instance::new();
        inst.add_relation("edge", Relation::empty(2));
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        assert_eq!(count(&bq), 0);
    }

    #[test]
    fn unary_sample_restricts_output() {
        let g = two_triangle_graph();
        let inst = instance_with_samples(&g, &[("v1", vec![0]), ("v2", vec![4])]);
        let q = CatalogQuery::ThreePath.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let rows = enumerate(&bq);
        assert_eq!(rows, naive_join(&inst, &q));
        for r in &rows {
            assert_eq!(r[0], 0);
            assert_eq!(r[3], 4);
        }
    }

    #[test]
    fn try_run_stops_at_the_first_break() {
        let g = two_triangle_graph();
        let inst = instance_with_samples(&g, &[]);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let mut seen = Vec::new();
        let stats = try_run(&bq, &mut |binding| {
            seen.push(binding.to_vec());
            ControlFlow::Break(())
        });
        assert_eq!(seen.len(), 1);
        assert_eq!(stats.results, 1);
        // The truncated prefix must coincide with the full run's first output, and
        // stopping early must explore no more bindings than the full search.
        let mut all = Vec::new();
        let full = run(&bq, &mut |b| all.push(b.to_vec()));
        assert_eq!(seen[0], all[0]);
        assert!(stats.bindings_explored < full.bindings_explored);
    }

    #[test]
    fn range_restriction_partitions_the_output() {
        let g = two_triangle_graph();
        let inst = instance_with_samples(&g, &[("v1", vec![0, 1, 3]), ("v2", vec![2, 3, 4])]);
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle, CatalogQuery::ThreePath] {
            let q = cq.query();
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            let total = count(&bq);
            let mut split = 0;
            let mut rows = Vec::new();
            for (lo, hi) in [(-1, 2), (2, 3), (3, gj_storage::POS_INF)] {
                let stats = LftjExecutor::new(&bq).with_range0(lo, hi).try_run(&mut |b| {
                    assert!(b[0] >= lo && b[0] < hi);
                    rows.push(b.to_vec());
                    ControlFlow::Continue(())
                });
                split += stats.results;
            }
            assert_eq!(split, total, "{}", q.name);
            // Concatenating the ranges in order reproduces the serial emission order.
            let mut serial = Vec::new();
            run(&bq, &mut |b| serial.push(b.to_vec()));
            assert_eq!(rows, serial, "{}", q.name);
        }
    }

    #[test]
    fn stats_count_results() {
        let g = two_triangle_graph();
        let inst = instance_with_samples(&g, &[]);
        let q = CatalogQuery::ThreeClique.query();
        let bq = BoundQuery::new(&inst, &q, None).unwrap();
        let stats = run(&bq, &mut |_| {});
        assert_eq!(stats.results, 2);
        assert!(stats.bindings_explored >= stats.results);
    }
}
