//! Property-based tests: LeapFrog TrieJoin must agree with the naive reference join
//! on random graphs for every catalog query, under any legal GAO, and its output size
//! must respect the AGM bound.

use gj_lftj::{count, enumerate};
use gj_query::{agm_bound, naive_join, BoundQuery, CatalogQuery, Instance};
use gj_storage::{Graph, Relation};
use proptest::prelude::*;

/// A random small graph plus sample relations, described by the raw edge choices.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        2usize..12,
        prop::collection::vec((0u32..12, 0u32..12), 0..60),
        prop::collection::vec(0i64..12, 0..8),
        prop::collection::vec(0i64..12, 0..8),
    )
        .prop_map(|(n, raw_edges, v1, v2)| {
            let n = n.max(raw_edges.iter().map(|&(a, b)| a.max(b) as usize + 1).max().unwrap_or(1));
            let g = Graph::new_undirected(n, raw_edges);
            let mut inst = Instance::new();
            inst.add_relation("edge", g.edge_relation());
            inst.add_relation(
                "v1",
                Relation::from_values(v1.into_iter().filter(|&v| v < n as i64)),
            );
            inst.add_relation(
                "v2",
                Relation::from_values(v2.into_iter().filter(|&v| v < n as i64)),
            );
            inst.add_relation("v3", Relation::from_values((0..n as i64).step_by(2)));
            inst.add_relation("v4", Relation::from_values((0..n as i64).step_by(3)));
            inst
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lftj_matches_naive_on_all_catalog_queries(inst in arb_instance()) {
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            let expected = naive_join(&inst, &q);
            prop_assert_eq!(enumerate(&bq), expected, "{}", q.name);
        }
    }

    #[test]
    fn lftj_is_gao_independent(inst in arb_instance(), seed in 0u64..1000) {
        // Evaluate the 4-cycle under a pseudo-random GAO and the default one.
        let q = CatalogQuery::FourCycle.query();
        let n = q.num_vars();
        let mut gao: Vec<usize> = (0..n).collect();
        // Cheap deterministic shuffle from the seed.
        for i in (1..n).rev() {
            let j = (seed as usize).wrapping_mul(31).wrapping_add(i * 7) % (i + 1);
            gao.swap(i, j);
        }
        let default = BoundQuery::new(&inst, &q, None).unwrap();
        let shuffled = BoundQuery::new(&inst, &q, Some(gao)).unwrap();
        prop_assert_eq!(enumerate(&default), enumerate(&shuffled));
    }

    #[test]
    fn output_size_respects_agm_bound(inst in arb_instance()) {
        // The AGM bound ignores the order filters, so compare against the unfiltered
        // variants of the cyclic queries (drop filters before counting).
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle] {
            let mut q = cq.query();
            q.filters.clear();
            let bq = BoundQuery::new(&inst, &q, None).unwrap();
            let bound = agm_bound(&q, &bq.atom_sizes());
            let actual = count(&bq) as f64;
            prop_assert!(actual <= bound.bound + 1e-6,
                "{}: {} > AGM bound {}", q.name, actual, bound.bound);
        }
    }
}
