//! The rule engine: runs every scoped rule over every file, applies inline
//! waivers, and turns waiver problems into findings of their own.
//!
//! Pipeline per file: lex → parse waivers → run the rules whose `lint.toml`
//! scope covers the path → suppress findings covered by a waiver → report
//! malformed waivers (`waiver-syntax`) and waivers that suppressed nothing
//! (`unused-waiver`). The meta-rules are always on: a waiver is a standing
//! exception, and both a typo'd one (protecting nothing) and a stale one
//! (excusing code that no longer exists) must fail CI, not rot.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::rules::{known_rule_ids, Rule, UNUSED_WAIVER, WAIVER_SYNTAX};
use crate::source::SourceFile;
use crate::waiver::parse_waivers;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// File path (workspace-relative, `/`-separated).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The rule id that fired.
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// `file:line:col: [rule] message` — the human report line.
    pub fn render(&self) -> String {
        format!("{}:{}:{}: [{}] {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// Lints one file under `config`, returning surviving findings sorted by
/// position.
pub fn lint_file(file: &SourceFile, config: &Config, rules: &[Box<dyn Rule>]) -> Vec<Finding> {
    let known = known_rule_ids();
    let (waivers, waiver_errors) = parse_waivers(file, &known);

    let mut raw = Vec::new();
    for rule in rules {
        let Some(rule_cfg) = config.rules.get(rule.id()) else {
            continue; // a rule absent from lint.toml is disabled
        };
        if !rule_cfg.applies_to(&file.path) {
            continue;
        }
        rule.check(file, rule_cfg, &mut raw);
    }

    // Apply waivers: a finding is suppressed when a waiver targets its line and
    // names its rule. Track which waivers actually suppressed something.
    let mut used = vec![false; waivers.len()];
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            let mut suppressed = false;
            for (w, flag) in waivers.iter().zip(used.iter_mut()) {
                if w.target_line == f.line && w.rules.contains(&f.rule) {
                    *flag = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();

    for err in &waiver_errors {
        findings.push(Finding {
            file: file.path.clone(),
            line: err.line,
            col: 1,
            rule: WAIVER_SYNTAX.to_string(),
            message: err.message.clone(),
        });
    }
    for (w, used) in waivers.iter().zip(used) {
        if !used {
            findings.push(Finding {
                file: file.path.clone(),
                line: w.comment_line,
                col: 1,
                rule: UNUSED_WAIVER.to_string(),
                message: format!(
                    "waiver for {} suppresses nothing on line {} — remove it (stale exceptions must not accumulate)",
                    w.rules.join(", "),
                    w.target_line
                ),
            });
        }
    }

    findings.sort();
    findings
}

/// Lints a set of files and cross-checks file-level rule configs: a rule whose
/// `files` list names a path that was not walked (renamed executor, stale
/// config) is itself a finding — otherwise renaming `executor.rs` would
/// silently disable the watch-tick guard.
pub fn lint_files(files: &[SourceFile], config: &Config, rules: &[Box<dyn Rule>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        findings.extend(lint_file(file, config, rules));
    }
    let walked: BTreeSet<&str> = files.iter().map(|f| f.path.as_str()).collect();
    for (rule_id, rule_cfg) in &config.rules {
        for path in &rule_cfg.files {
            if !walked.contains(path.as_str()) {
                findings.push(Finding {
                    file: "lint.toml".to_string(),
                    line: 1,
                    col: 1,
                    rule: rule_id.clone(),
                    message: format!(
                        "[rule.{rule_id}] names `{path}` but no such file was walked — renamed? update lint.toml so the guard keeps applying"
                    ),
                });
            }
        }
    }
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleConfig;
    use crate::rules::all_rules;

    fn config_with(rule: &str, rc: RuleConfig) -> Config {
        let mut cfg = Config::default();
        cfg.rules.insert(rule.to_string(), rc);
        cfg
    }

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), src.into(), false)
    }

    #[test]
    fn findings_fire_and_waivers_suppress() {
        let cfg = config_with("no-panic-in-engines", RuleConfig::everywhere());
        let rules = all_rules();
        let f = file("fn a() { x.unwrap(); }\n");
        let findings = lint_file(&f, &cfg, &rules);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "no-panic-in-engines");

        let f = file(
            "fn a() { x.unwrap(); } // gj-lint: allow(no-panic-in-engines) — exercised only at startup\n",
        );
        let findings = lint_file(&f, &cfg, &rules);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unused_waivers_and_malformed_waivers_are_findings() {
        let cfg = config_with("no-panic-in-engines", RuleConfig::everywhere());
        let rules = all_rules();
        let f =
            file("fn ok() {} // gj-lint: allow(no-panic-in-engines) — nothing here to excuse\n");
        let findings = lint_file(&f, &cfg, &rules);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, UNUSED_WAIVER);

        let f = file("fn a() { x.unwrap(); } // gj-lint: allow(no-panic-in-engines)\n");
        let findings = lint_file(&f, &cfg, &rules);
        // The waiver is malformed (no reason), so it suppresses nothing: both the
        // syntax error and the original finding surface.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.rule == WAIVER_SYNTAX));
        assert!(findings.iter().any(|f| f.rule == "no-panic-in-engines"));
    }

    #[test]
    fn out_of_scope_files_are_untouched() {
        let rc = RuleConfig { scopes: vec!["crates/other".into()], ..Default::default() };
        let cfg = config_with("no-panic-in-engines", rc);
        let f = file("fn a() { x.unwrap(); }\n");
        assert!(lint_file(&f, &cfg, &all_rules()).is_empty());
    }

    #[test]
    fn missing_configured_file_is_a_finding() {
        let rc =
            RuleConfig { files: vec!["crates/gone/src/executor.rs".into()], ..Default::default() };
        let cfg = config_with("watch-tick-in-executors", rc);
        let f = file("fn a() {}\n");
        let findings = lint_files(std::slice::from_ref(&f), &cfg, &all_rules());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no such file"), "{}", findings[0].message);
    }
}
