//! Inline waivers: `// gj-lint: allow(<rule>) — <reason>`.
//!
//! A waiver suppresses findings of the named rule(s) on **its own line**, or —
//! when the comment stands alone on a line — on the **next** line. The reason is
//! mandatory: a waiver is a reviewed exception, and the reviewer's argument must
//! live next to the code it excuses. Malformed waivers (missing reason, unknown
//! rule id, bad syntax) are findings themselves (`waiver-syntax`), and waivers
//! that suppress nothing are too (`unused-waiver`) so stale exceptions cannot
//! accumulate. Several rules can share one waiver:
//! `// gj-lint: allow(rule-a, rule-b) — reason`.
//!
//! The separator before the reason may be an em dash, `--`, `-`, or `:`; the
//! reason must be at least 10 characters — "ok" is not an argument.

use crate::lexer::Comment;
use crate::source::SourceFile;

/// The marker that introduces a waiver inside a comment.
pub const MARKER: &str = "gj-lint:";

/// Minimum length of a waiver reason, in characters.
pub const MIN_REASON: usize = 10;

/// One parsed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule ids this waiver suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line the waiver suppresses findings on.
    pub target_line: usize,
    /// 1-based line of the comment itself (== `target_line` for trailing
    /// comments, `target_line - 1` for standalone ones).
    pub comment_line: usize,
}

/// A malformed waiver, reported as a `waiver-syntax` finding by the engine.
#[derive(Debug, Clone)]
pub struct WaiverError {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Extracts all waivers from a file's comments. `known_rules` is used to reject
/// typo'd rule ids — a waiver for a rule that does not exist would otherwise
/// silently protect nothing.
pub fn parse_waivers(file: &SourceFile, known_rules: &[&str]) -> (Vec<Waiver>, Vec<WaiverError>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for comment in &file.comments {
        if comment.is_doc() {
            continue; // rustdoc prose may *show* waivers without enacting them
        }
        let Some(idx) = comment.text.find(MARKER) else { continue };
        let rest = comment.text[idx + MARKER.len()..].trim();
        match parse_one(rest, known_rules) {
            Ok((rules, reason)) => {
                let target_line =
                    if is_standalone(file, comment) { comment.end_line + 1 } else { comment.line };
                waivers.push(Waiver { rules, reason, target_line, comment_line: comment.line });
            }
            Err(message) => errors.push(WaiverError { line: comment.line, message }),
        }
    }
    (waivers, errors)
}

/// Whether the comment is the first thing on its line (waives the next line)
/// rather than trailing code (waives its own line).
fn is_standalone(file: &SourceFile, comment: &Comment) -> bool {
    let line_text = file.line_text(comment.line);
    let col = file.col_of(comment.lo);
    line_text[..col - 1].trim().is_empty()
}

/// Parses `allow(rule-a, rule-b) — reason` (the text after the marker).
fn parse_one(rest: &str, known_rules: &[&str]) -> Result<(Vec<String>, String), String> {
    let Some(after_allow) = rest.strip_prefix("allow") else {
        return Err(format!("expected `allow(<rule>) — <reason>` after `{MARKER}`"));
    };
    let after_allow = after_allow.trim_start();
    let Some(args_start) = after_allow.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = args_start.find(')') else {
        return Err("unterminated `allow(...)`".to_string());
    };
    let rules: Vec<String> = args_start[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("`allow()` names no rule".to_string());
    }
    for rule in &rules {
        if !known_rules.contains(&rule.as_str()) {
            return Err(format!("unknown rule `{rule}` in waiver"));
        }
    }
    let mut reason = args_start[close + 1..].trim();
    // Strip the leading separator (em dash / en dash / hyphens / colon).
    reason = reason.trim_start_matches(['\u{2014}', '\u{2013}', '-', ':']).trim_start();
    // Block comments: drop a trailing `*/`.
    let reason = reason.trim_end_matches("*/").trim().to_string();
    if reason.chars().count() < MIN_REASON {
        return Err(format!(
            "waiver reason is mandatory (≥ {MIN_REASON} chars): every waiver is a reviewed exception and must say why"
        ));
    }
    Ok((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["no-panic-in-engines", "poison-tolerant-locks"];

    fn file(src: &str) -> SourceFile {
        SourceFile::new("x.rs".into(), src.into(), false)
    }

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let f = file("let x = a.unwrap(); // gj-lint: allow(no-panic-in-engines) — startup path, config is validated\n");
        let (ws, errs) = parse_waivers(&f, RULES);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].target_line, 1);
        assert_eq!(ws[0].rules, ["no-panic-in-engines"]);
        assert!(ws[0].reason.contains("startup"));
    }

    #[test]
    fn standalone_waiver_targets_the_next_line() {
        let f = file("// gj-lint: allow(poison-tolerant-locks) — helper below recovers poisoning\nlet g = m.lock();\n");
        let (ws, errs) = parse_waivers(&f, RULES);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(ws[0].target_line, 2);
        assert_eq!(ws[0].comment_line, 1);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let f = file("x(); // gj-lint: allow(no-panic-in-engines)\n");
        let (ws, errs) = parse_waivers(&f, RULES);
        assert!(ws.is_empty());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("reason"), "{}", errs[0].message);
    }

    #[test]
    fn short_reason_is_an_error() {
        let f = file("x(); // gj-lint: allow(no-panic-in-engines) — ok\n");
        let (_, errs) = parse_waivers(&f, RULES);
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let f = file("x(); // gj-lint: allow(no-such-rule) — a perfectly long reason\n");
        let (_, errs) = parse_waivers(&f, RULES);
        assert!(errs[0].message.contains("unknown rule"));
    }

    #[test]
    fn multiple_rules_share_one_waiver_and_ascii_separators_work() {
        let f = file(
            "y(); // gj-lint: allow(no-panic-in-engines, poison-tolerant-locks) -- both intentional here\n",
        );
        let (ws, errs) = parse_waivers(&f, RULES);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(ws[0].rules.len(), 2);
    }

    #[test]
    fn non_waiver_comments_are_ignored() {
        let f = file("// just words about gj-lint the tool\nx();\n");
        let (ws, errs) = parse_waivers(&f, RULES);
        // Mentions the tool but never the marker, so nothing parses.
        assert!(ws.is_empty() && errs.is_empty());
    }

    #[test]
    fn doc_comments_never_enact_waivers() {
        let f = file(
            "/// Example: `x(); // gj-lint: allow(no-panic-in-engines) — some long reason`\nfn documented() {}\n",
        );
        let (ws, errs) = parse_waivers(&f, RULES);
        assert!(ws.is_empty() && errs.is_empty(), "{ws:?} {errs:?}");
    }
}
