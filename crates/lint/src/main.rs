//! The `gj-lint` binary: walks the workspace, lints every `.rs` file under the
//! `lint.toml` scopes, and exits non-zero on findings.
//!
//! ```text
//! gj-lint [--json] [--config PATH] [--root DIR] [--list-rules] [--fixtures] [PATH...]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or configuration error. With
//! explicit `PATH` arguments only those files are linted (still under the
//! configured scopes) — handy for pre-commit hooks.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gj_lint::config::Config;
use gj_lint::fixtures::check_fixtures;
use gj_lint::report::{render_human, render_json};
use gj_lint::rules::all_rules;
use gj_lint::source::SourceFile;

/// Directories the walker never descends into, config aside.
const ALWAYS_SKIP: &[&str] = &["target", ".git", ".github"];

struct Options {
    json: bool,
    list_rules: bool,
    fixtures: bool,
    config_path: PathBuf,
    root: PathBuf,
    paths: Vec<String>,
}

fn usage() -> String {
    "usage: gj-lint [--json] [--config PATH] [--root DIR] [--list-rules] [--fixtures] [PATH...]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        list_rules: false,
        fixtures: false,
        config_path: PathBuf::from("lint.toml"),
        root: PathBuf::from("."),
        paths: Vec::new(),
    };
    let mut explicit_config = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--fixtures" => opts.fixtures = true,
            "--config" => {
                let path =
                    it.next().ok_or_else(|| format!("--config needs a path\n{}", usage()))?;
                opts.config_path = PathBuf::from(path);
                explicit_config = true;
            }
            "--root" => {
                let dir =
                    it.next().ok_or_else(|| format!("--root needs a directory\n{}", usage()))?;
                opts.root = PathBuf::from(dir);
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            path => opts.paths.push(path.to_string()),
        }
    }
    if !explicit_config {
        opts.config_path = opts.root.join("lint.toml");
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in all_rules() {
            println!("{:<42} {}", rule.id(), rule.describe());
        }
        let ws = "meta: malformed waiver (bad syntax, unknown rule, or missing reason)";
        println!("{:<42} {ws}", "waiver-syntax");
        let uw = "meta: a waiver that suppressed nothing";
        println!("{:<42} {uw}", "unused-waiver");
        return ExitCode::SUCCESS;
    }

    if opts.fixtures {
        return run_fixtures(&opts);
    }

    run_tree(&opts)
}

/// Lints the workspace tree (or the explicit paths) under `lint.toml`.
fn run_tree(opts: &Options) -> ExitCode {
    let config_text = match fs::read_to_string(&opts.config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gj-lint: cannot read {}: {e}", opts.config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gj-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let rel_paths = if opts.paths.is_empty() {
        let mut found = Vec::new();
        walk(&opts.root, &opts.root, &config.exclude, &mut found);
        found.sort();
        found
    } else {
        opts.paths.clone()
    };

    let mut files = Vec::new();
    for rel in &rel_paths {
        let full = opts.root.join(rel);
        let text = match fs::read_to_string(&full) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("gj-lint: cannot read {}: {e}", full.display());
                return ExitCode::from(2);
            }
        };
        files.push(SourceFile::new(rel.clone(), text, is_test_path(rel)));
    }

    let findings = gj_lint::lint_files(&files, &config, &all_rules());
    if opts.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_human(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs the self-test corpus: prints its findings and fails on any divergence
/// from the `//~ ERROR` markers. Exit 1 when the corpus fires as expected (it
/// always does — the bad fixtures exist to fire), 2 on divergence.
fn run_fixtures(opts: &Options) -> ExitCode {
    let root = opts.root.join("crates/lint/tests/fixtures");
    let report = match check_fixtures(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gj-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        print!("{}", render_json(&report.findings));
    } else {
        print!("{}", render_human(&report.findings));
    }
    if !report.mismatches.is_empty() {
        for m in &report.mismatches {
            eprintln!("gj-lint: fixture mismatch: {m}");
        }
        return ExitCode::from(2);
    }
    eprintln!(
        "gj-lint: fixture corpus matched exactly ({} files, {} findings)",
        report.files_checked,
        report.findings.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Collects workspace-relative `/`-separated paths of every `.rs` file.
fn walk(root: &Path, dir: &Path, exclude: &[String], out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if ALWAYS_SKIP.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            if exclude.contains(&rel) {
                continue;
            }
            walk(root, &path, exclude, out);
        } else if name.ends_with(".rs") && !exclude.contains(&rel) {
            out.push(rel);
        }
    }
}

/// Whether a path is test code by location alone.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "examples" || c == "benches")
}
