//! The self-test corpus runner: lints `tests/fixtures/<rule-id>/*.rs` and
//! checks the findings against inline `//~ ERROR <rule-id>` markers
//! (rustc-UI-test style).
//!
//! Each fixture directory is named after the single rule it exercises; its
//! `bad.rs` carries one marker per expected finding and its `good.rs` carries
//! none (and must produce none — both directions are pinned). The two waiver
//! meta-rule directories additionally enable `no-panic-in-engines` as the rule
//! being waived. Fixture files are linted with *path-based* test detection off
//! (`test_file = false`) so a fixture can prove that `#[cfg(test)]` regions are
//! exempt.

use std::fs;
use std::path::Path;

use crate::config::{Config, RuleConfig};
use crate::engine::lint_file;
use crate::rules::{all_rules, known_rule_ids, UNUSED_WAIVER, WAIVER_SYNTAX};
use crate::source::SourceFile;
use crate::Finding;

/// The marker that declares an expected finding: `//~ ERROR <rule>` on the
/// flagged line itself, or `//~^ ERROR <rule>` with one `^` per line *above*
/// the marker (rustc UI-test style) when the flagged line cannot carry a second
/// comment — e.g. when the finding is about a waiver comment.
pub const ERROR_MARKER: &str = "//~";

/// Result of running the whole corpus.
pub struct FixtureReport {
    /// Number of fixture files linted.
    pub files_checked: usize,
    /// Every finding the corpus produced (for `--fixtures` display).
    pub findings: Vec<Finding>,
    /// Human-readable discrepancies; empty means the corpus matched exactly.
    pub mismatches: Vec<String>,
}

/// Lints every fixture file under `root` and compares against its markers.
pub fn check_fixtures(root: &Path) -> Result<FixtureReport, String> {
    let known = known_rule_ids();
    let mut report =
        FixtureReport { files_checked: 0, findings: Vec::new(), mismatches: Vec::new() };
    let mut dirs: Vec<_> = fs::read_dir(root)
        .map_err(|e| format!("cannot read fixture root {}: {e}", root.display()))?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .collect();
    dirs.sort_by_key(|e| e.file_name());
    if dirs.is_empty() {
        return Err(format!("no fixture directories under {}", root.display()));
    }
    for dir in dirs {
        let rule_id = dir.file_name().to_string_lossy().to_string();
        if !known.contains(&rule_id.as_str()) {
            return Err(format!(
                "fixture directory `{rule_id}` does not name a known rule (known: {})",
                known.join(", ")
            ));
        }
        let mut files: Vec<_> = fs::read_dir(dir.path())
            .map_err(|e| format!("cannot read {}: {e}", dir.path().display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("fixture directory `{rule_id}` has no .rs files"));
        }
        for path in files {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel =
                format!("{rule_id}/{}", path.file_name().unwrap_or_default().to_string_lossy());
            check_one(&rel, &text, &rule_id, &mut report);
        }
    }
    Ok(report)
}

/// Lints one fixture file with only its directory's rule enabled and records
/// discrepancies against the `//~ ERROR` markers.
fn check_one(rel: &str, text: &str, rule_id: &str, report: &mut FixtureReport) {
    let file = SourceFile::new(rel.to_string(), text.to_string(), false);
    let config = fixture_config(rule_id, rel);
    let findings = lint_file(&file, &config, &all_rules());

    let mut expected: Vec<(usize, String)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(pos) = line.find(ERROR_MARKER) else { continue };
        let rest = &line[pos + ERROR_MARKER.len()..];
        let carets = rest.chars().take_while(|&c| c == '^').count();
        let Some(rule_part) = rest[carets..].trim_start().strip_prefix("ERROR") else {
            continue;
        };
        let rule = rule_part.split_whitespace().next().unwrap_or("").to_string();
        expected.push((idx + 1 - carets, rule));
    }
    expected.sort();

    let mut actual: Vec<(usize, String)> =
        findings.iter().map(|f| (f.line, f.rule.clone())).collect();
    actual.sort();

    for e in &expected {
        if !actual.contains(e) {
            report
                .mismatches
                .push(format!("{rel}:{}: expected a `{}` finding that did not fire", e.0, e.1));
        }
    }
    for a in &actual {
        if !expected.contains(a) {
            report
                .mismatches
                .push(format!("{rel}:{}: unexpected `{}` finding (no //~ ERROR marker)", a.0, a.1));
        }
    }
    report.files_checked += 1;
    report.findings.extend(findings);
}

/// The per-directory config: the directory's rule everywhere, plus whatever
/// that rule needs to be exercisable in isolation.
fn fixture_config(rule_id: &str, rel: &str) -> Config {
    let mut config = Config::default();
    match rule_id {
        "watch-tick-in-executors" => {
            // File-level rule: point its `files` list at this very fixture.
            let rc = RuleConfig { files: vec![rel.to_string()], ..RuleConfig::everywhere() };
            config.rules.insert(rule_id.to_string(), rc);
        }
        "sink-controlflow-propagated" => {
            let rc = RuleConfig {
                receivers: vec!["sink".to_string(), "shard".to_string()],
                ..RuleConfig::everywhere()
            };
            config.rules.insert(rule_id.to_string(), rc);
        }
        WAIVER_SYNTAX | UNUSED_WAIVER => {
            // The meta-rules are always on; give them a real rule to waive.
            config.rules.insert("no-panic-in-engines".to_string(), RuleConfig::everywhere());
        }
        _ => {
            config.rules.insert(rule_id.to_string(), RuleConfig::everywhere());
        }
    }
    config
}
