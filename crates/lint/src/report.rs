//! Rendering findings: human-readable for terminals, JSON for CI.
//!
//! The JSON writer is hand-rolled (the crate is dependency-free by design); it
//! emits an object `{"findings": [...], "count": N}` with every string escaped
//! per RFC 8259, so the CI gate can `jq`-inspect results without trusting any
//! particular finding text.

use crate::Finding;

/// Renders findings for a terminal, one `file:line:col: [rule] message` per
/// finding plus a summary line.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("gj-lint: clean\n");
    } else {
        out.push_str(&format!(
            "gj-lint: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Renders findings as a JSON document for CI consumption.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_string(&f.file),
            f.line,
            f.col,
            json_string(&f.rule),
            json_string(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}\n", findings.len()));
    out
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(msg: &str) -> Finding {
        Finding {
            file: "a/b.rs".into(),
            line: 3,
            col: 7,
            rule: "no-panic-in-engines".into(),
            message: msg.into(),
        }
    }

    #[test]
    fn human_report_has_positions_and_summary() {
        let out = render_human(&[finding("boom")]);
        assert!(out.contains("a/b.rs:3:7: [no-panic-in-engines] boom"));
        assert!(out.contains("1 finding\n"));
        assert!(render_human(&[]).contains("clean"));
    }

    #[test]
    fn json_is_escaped() {
        let out = render_json(&[finding("say \"hi\"\nback\\slash")]);
        assert!(out.contains(r#"\"hi\""#), "{out}");
        assert!(out.contains(r"\n"), "{out}");
        assert!(out.contains(r"back\\slash"), "{out}");
        assert!(out.contains("\"count\":1"), "{out}");
    }
}
