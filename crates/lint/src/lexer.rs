//! A lightweight Rust lexer: the shared front-end of every lint rule.
//!
//! The lexer's only job is to split a source file into a token stream that rules
//! can pattern-match without tripping over the classic text-grep failure modes:
//! `unwrap` inside a string literal, `.lock()` inside a comment, `'a` lifetimes
//! mistaken for char literals, nested block comments. It is *not* a parser — no
//! AST is built — but every token carries a byte span and a line number, and the
//! comments are kept (with spans) because the waiver and `SAFETY:` rules read
//! them.
//!
//! Handled explicitly: line comments (`//`, `///`, `//!`), nested block comments
//! (`/* /* */ */`), string literals with escapes, raw strings (`r"…"`,
//! `r#"…"#`, any hash depth, with `b`/`c` prefixes), byte/char literals with
//! escapes, lifetimes vs char literals (`'a` vs `'a'`), raw identifiers
//! (`r#match`), and numeric literals (loosely — enough to keep `1.0e-3` a single
//! token and `0..n` three).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `pub`, `self`, `_`, raw idents).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Numeric literal (`42`, `1.0e-3`, `0xFF`).
    Num,
    /// String / raw string / byte-string / char / byte literal.
    Literal,
    /// A single punctuation character (`.`, `(`, `{`, `?`, `!`, …).
    Punct,
}

/// One token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind of the lexeme.
    pub kind: TokKind,
    /// The lexeme text (for `Literal` only the opening delimiter region matters
    /// to rules, but the full text is kept).
    pub text: String,
    /// Byte offset of the first character.
    pub lo: usize,
    /// Byte offset one past the last character.
    pub hi: usize,
    /// 1-based source line of `lo`.
    pub line: usize,
}

impl Token {
    /// Whether this token is the single punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A comment with its span (line and block comments, doc comments included).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text, delimiters included (`// …` / `/* … */`).
    pub text: String,
    /// Byte offset of the first character.
    pub lo: usize,
    /// Byte offset one past the last character.
    pub hi: usize,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based line of the last character (differs for block comments).
    pub end_line: usize,
}

impl Comment {
    /// Whether this is an outer doc comment (`///` or `/** … */`).
    ///
    /// `////…` separator bars are plain comments, matching rustdoc.
    pub fn is_outer_doc(&self) -> bool {
        (self.text.starts_with("///") && !self.text.starts_with("////"))
            || (self.text.starts_with("/**") && !self.text.starts_with("/***"))
    }

    /// Whether this is any doc comment (outer or inner). Doc comments are
    /// rendered prose — text in them (e.g. a waiver example in rustdoc) is
    /// never an *active* lint directive.
    pub fn is_doc(&self) -> bool {
        self.is_outer_doc() || self.text.starts_with("//!") || self.text.starts_with("/*!")
    }
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order. Comments are *not* tokens.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated literals or
/// comments simply extend to the end of the file (good enough for linting — a
/// file in that state does not compile anyway).
pub fn lex(src: &str) -> Lexed {
    Lexer { src, pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(ahead)
    }

    /// Advances one char, maintaining the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokKind, lo: usize, line: usize) {
        self.out.tokens.push(Token {
            kind,
            text: self.src[lo..self.pos].to_string(),
            lo,
            hi: self.pos,
            line,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let lo = self.pos;
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(lo, line),
                '/' if self.peek(1) == Some('*') => self.block_comment(lo, line),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push_token(TokKind::Literal, lo, line);
                }
                '\'' => self.lifetime_or_char(lo, line),
                'r' | 'b' | 'c' if self.raw_or_prefixed_string(lo, line) => {}
                c if is_ident_start(c) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push_token(TokKind::Ident, lo, line);
                }
                c if c.is_ascii_digit() => self.number(lo, line),
                _ => {
                    self.bump();
                    self.push_token(TokKind::Punct, lo, line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, lo: usize, line: usize) {
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.bump();
        }
        self.out.comments.push(Comment {
            text: self.src[lo..self.pos].to_string(),
            lo,
            hi: self.pos,
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self, lo: usize, line: usize) {
        self.bump();
        self.bump(); // consume "/*"
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: extend to EOF
            }
        }
        self.out.comments.push(Comment {
            text: self.src[lo..self.pos].to_string(),
            lo,
            hi: self.pos,
            line,
            end_line: self.line,
        });
    }

    /// Consumes a (non-raw) string body after the opening `"`.
    fn string_body(&mut self) {
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump(); // the escaped char, whatever it is
                }
                Some('"') | None => break,
                Some(_) => {}
            }
        }
    }

    /// `'a` (lifetime) vs `'a'` / `'\n'` (char literal).
    fn lifetime_or_char(&mut self, lo: usize, line: usize) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                // Definitely a char literal with an escape.
                self.bump();
                self.bump();
                while self.peek(0).is_some_and(|c| c != '\'') {
                    self.bump(); // \u{…} bodies
                }
                self.bump(); // closing '
                self.push_token(TokKind::Literal, lo, line);
            }
            Some(c) if is_ident_continue(c) => {
                if self.peek(1) == Some('\'') {
                    // 'x' — a one-char literal.
                    self.bump();
                    self.bump();
                    self.push_token(TokKind::Literal, lo, line);
                } else {
                    // 'ident — a lifetime.
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push_token(TokKind::Lifetime, lo, line);
                }
            }
            Some(_) => {
                // ' followed by punctuation: a char literal like '(' .
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push_token(TokKind::Literal, lo, line);
            }
            None => self.push_token(TokKind::Punct, lo, line),
        }
    }

    /// Tries to lex `r"…"`, `r#"…"#`, `br#"…"#`, `b"…"`, `c"…"`, or a raw
    /// identifier `r#ident` at the current position. Returns `false` when the
    /// position is a plain identifier starting with r/b/c (the caller then lexes
    /// it as an ident).
    fn raw_or_prefixed_string(&mut self, lo: usize, line: usize) -> bool {
        let rest = &self.src[self.pos..];
        let prefix_len = ["br", "cr", "r", "b", "c"]
            .iter()
            .find(|p| rest.starts_with(**p))
            .map_or(0, |p| p.len());
        // Count hashes after the prefix, then require a quote for a raw string.
        let after = &rest[prefix_len..];
        let hashes = after.chars().take_while(|&c| c == '#').count();
        let raw = after[hashes..].starts_with('"');
        let has_r = rest[..prefix_len].contains('r');
        if raw && (hashes == 0 || has_r) {
            if !has_r && hashes == 0 {
                // b"…" / c"…": a normal (escaped) string with a prefix byte.
                for _ in 0..prefix_len + 1 {
                    self.bump();
                }
                self.string_body();
                self.push_token(TokKind::Literal, lo, line);
                return true;
            }
            // Raw string: consume prefix, hashes, quote, then scan for `"####`.
            for _ in 0..prefix_len + hashes + 1 {
                self.bump();
            }
            loop {
                match self.bump() {
                    Some('"') => {
                        let mut seen = 0;
                        while seen < hashes && self.peek(0) == Some('#') {
                            self.bump();
                            seen += 1;
                        }
                        if seen == hashes {
                            break;
                        }
                    }
                    None => break,
                    Some(_) => {}
                }
            }
            self.push_token(TokKind::Literal, lo, line);
            return true;
        }
        if rest.starts_with("r#") && after[1..].chars().next().is_some_and(is_ident_start) {
            // Raw identifier r#match: lex as an identifier (text keeps the r#).
            self.bump();
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            self.push_token(TokKind::Ident, lo, line);
            return true;
        }
        false
    }

    fn number(&mut self, lo: usize, line: usize) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        // A fraction only when followed by `.digit` (leaves `0..n` as a range).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
        }
        // Exponent sign: 1.0e-3 — the e was consumed above, pick up `-3`/`+3`.
        if self.src[lo..self.pos].ends_with(['e', 'E'])
            && self.peek(0).is_some_and(|c| c == '+' || c == '-')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        self.push_token(TokKind::Num, lo, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts_split_correctly() {
        assert_eq!(
            texts("x.lock().unwrap()"),
            ["x", ".", "lock", "(", ")", ".", "unwrap", "(", ")"]
        );
    }

    #[test]
    fn strings_hide_their_contents_from_rules() {
        let toks = texts(r#"let s = "call .unwrap() here";"#);
        assert!(toks.iter().all(|t| t != "unwrap"));
        assert_eq!(toks.iter().filter(|t| *t == "\"call .unwrap() here\"").count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes_terminate_at_matching_depth() {
        let src = r###"let s = r#"a "quoted" unwrap()"#; x.unwrap()"###;
        let toks = texts(src);
        assert_eq!(toks.iter().filter(|t| *t == "unwrap").count(), 1, "{toks:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokKind::Literal).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'a'");
    }

    #[test]
    fn escaped_char_literals_lex_as_one_token() {
        let lexed = lex(r"let c = '\n'; let q = '\''; let u = '\u{1F600}';");
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, [r"'\n'", r"'\''", r"'\u{1F600}'"]);
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let lexed = lex("a /* outer /* inner */ still */ b");
        assert_eq!(lexed.tokens.len(), 2);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn comments_carry_lines_and_doc_flag() {
        let lexed = lex("/// docs\n// plain\nfn f() {}\n");
        assert!(lexed.comments[0].is_outer_doc());
        assert!(!lexed.comments[1].is_outer_doc());
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let lexed = lex("let r#match = 1;");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == "r#match"));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        assert_eq!(texts("0..n"), ["0", ".", ".", "n"]);
        assert_eq!(texts("1.5e-3"), ["1.5e-3"]);
        assert_eq!(texts("0xFF_u8"), ["0xFF_u8"]);
    }

    #[test]
    fn byte_and_c_strings_lex_as_literals() {
        let lexed = lex(r##"let a = b"bytes"; let c = c"cstr"; let r = br#"raw"#;"##);
        let lits = lexed.tokens.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 3);
    }
}
