//! A lexed source file plus the derived facts rules query: line mapping and
//! `#[cfg(test)]` / `#[test]` region detection.
//!
//! Most rules only police *production* code: anything inside an item annotated
//! `#[test]` or `#[cfg(test)]` (the conventional `mod tests`) is exempt unless a
//! rule opts in with `include_tests`. Detection is token-based, not syntactic: a
//! test attribute marks the byte range of the item that follows it (up to the
//! matching `}` of its body, or the terminating `;`), which is exactly right for
//! `mod tests { … }`, `#[test] fn …` and `#[cfg(test)] use …` alike. Attributes
//! containing `not(test)` (production-only items) are ignored. Files that are
//! test-only by *location* — under a `tests/` directory, `examples/`, or
//! `benches/` — are marked wholesale by the walker.

use crate::lexer::{lex, Comment, Lexed, Token};

/// One file, lexed and indexed, handed to every rule.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across platforms).
    pub path: String,
    /// The raw text.
    pub text: String,
    /// Code tokens (comments excluded).
    pub tokens: Vec<Token>,
    /// Comments with spans.
    pub comments: Vec<Comment>,
    /// Whether the whole file is test code by location (`tests/`, `examples/`).
    pub test_file: bool,
    /// Byte ranges covered by `#[test]` / `#[cfg(test)]` items.
    test_regions: Vec<(usize, usize)>,
    /// Byte offset of the start of each line (line N starts at `line_starts[N-1]`).
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Lexes `text` and computes the derived indexes.
    pub fn new(path: String, text: String, test_file: bool) -> Self {
        let Lexed { tokens, comments } = lex(&text);
        let mut line_starts = vec![0];
        line_starts.extend(text.match_indices('\n').map(|(i, _)| i + 1));
        let test_regions = find_test_regions(&tokens);
        SourceFile { path, text, tokens, comments, test_file, test_regions, line_starts }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// 1-based column of byte `offset` within its line.
    pub fn col_of(&self, offset: usize) -> usize {
        let line = self.line_of(offset);
        offset - self.line_starts[line - 1] + 1
    }

    /// The text of 1-based `line` (without the newline), or `""` out of range.
    pub fn line_text(&self, line: usize) -> &str {
        let lo = match self.line_starts.get(line - 1) {
            Some(&lo) => lo,
            None => return "",
        };
        let hi = self.line_starts.get(line).map_or(self.text.len(), |&next| next);
        self.text[lo..hi].trim_end_matches(['\n', '\r'])
    }

    /// Whether byte `offset` lies in test code (by file location or region).
    pub fn is_test(&self, offset: usize) -> bool {
        self.test_file || self.test_regions.iter().any(|&(lo, hi)| lo <= offset && offset < hi)
    }
}

/// Finds the byte ranges of items guarded by a test attribute.
///
/// Strategy: find every `#[…]` attribute group whose tokens include the bare
/// identifier `test` (covers `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`)
/// but not `not` (skips `#[cfg(not(test))]`); then extend the region over any
/// further attributes and the item head to the item's body `{ … }` (matched
/// braces) or its terminating `;` at bracket depth zero.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, i + 1, '[', ']') else { break };
        let attr = &tokens[i + 2..close];
        let is_test =
            attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
        if !is_test {
            i = close + 1;
            continue;
        }
        let start = tokens[i].lo;
        // Skip any further attributes between this one and the item head.
        let mut j = close + 1;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching(tokens, j + 1, '[', ']') {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // Scan the item head for its body `{` or terminating `;` at depth 0.
        let mut depth = 0i32;
        let mut end = tokens.last().map_or(start, |t| t.hi);
        while j < tokens.len() {
            let t = &tokens[j];
            if depth == 0 && t.is_punct('{') {
                end = matching(tokens, j, '{', '}').map_or(end, |c| tokens[c].hi);
                break;
            }
            if depth == 0 && t.is_punct(';') {
                end = t.hi;
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            }
            j += 1;
        }
        regions.push((start, end));
        i = close + 1;
    }
    regions
}

/// Index of the token closing the group opened at `open_idx` (which must hold
/// `open`), honouring nesting. `None` when unbalanced.
pub fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("x.rs".into(), src.into(), false)
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src =
            "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = file(src);
        let prod = src.find("x.unwrap").unwrap();
        let test = src.find("y.unwrap").unwrap();
        assert!(!f.is_test(prod));
        assert!(f.is_test(test));
    }

    #[test]
    fn test_fn_with_extra_attrs_is_a_test_region() {
        let src = "#[test]\n#[ignore]\nfn t() { boom(); }\nfn prod() {}\n";
        let f = file(src);
        assert!(f.is_test(src.find("boom").unwrap()));
        assert!(!f.is_test(src.find("prod").unwrap()));
    }

    #[test]
    fn not_test_cfg_is_production() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }\n";
        let f = file(src);
        assert!(!f.is_test(src.find("unwrap").unwrap()));
    }

    #[test]
    fn semicolon_items_close_their_region() {
        let src = "#[cfg(test)]\nuse helpers::*;\nfn prod() { x(); }\n";
        let f = file(src);
        assert!(f.is_test(src.find("helpers").unwrap()));
        assert!(!f.is_test(src.find("prod").unwrap()));
    }

    #[test]
    fn lines_and_cols_are_one_based() {
        let f = file("ab\ncd\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(3), 2);
        assert_eq!(f.col_of(4), 2);
        assert_eq!(f.line_text(2), "cd");
    }

    #[test]
    fn arrays_with_semicolons_do_not_end_a_region_early() {
        let src = "#[cfg(test)]\nconst X: [u8; 3] = [1, 2, 3];\nfn prod() {}\n";
        let f = file(src);
        assert!(f.is_test(src.find("[1, 2, 3]").unwrap()));
        assert!(!f.is_test(src.find("prod").unwrap()));
    }
}
