//! `lint.toml` parsing: rule → crate-scope mapping.
//!
//! The workspace has no crates-registry access, so this is a self-contained
//! parser for the TOML *subset* the config actually uses — `[section]` headers,
//! `key = "string"`, `key = ["array", "of", "strings"]`, `key = true/false`, and
//! `#` comments. Anything else is a hard configuration error: a config typo
//! must fail the lint run loudly, never silently disable a rule.
//!
//! Schema:
//!
//! ```toml
//! [lint]
//! exclude = ["target", "crates/lint/tests/fixtures"]   # never linted
//!
//! [rule.no-panic-in-engines]
//! scopes = ["crates/lftj/src", "crates/runtime/src"]   # path prefixes
//! exclude = []                                         # exempt sub-prefixes
//! include_tests = false                                # lint #[cfg(test)] code?
//!
//! [rule.watch-tick-in-executors]
//! files = ["crates/lftj/src/executor.rs"]              # file-level rules
//!
//! [rule.sink-controlflow-propagated]
//! receivers = ["sink", "shard"]                        # receiver heuristic
//! ```
//!
//! A rule missing from the config is **disabled** (scopes default to empty);
//! the two waiver meta-rules (`waiver-syntax`, `unused-waiver`) are always on.

use std::collections::BTreeMap;

/// Per-rule configuration (see the module docs for the schema).
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Path prefixes (workspace-relative) where the rule applies; `"."` means
    /// everywhere.
    pub scopes: Vec<String>,
    /// Path prefixes exempt even when inside a scope.
    pub exclude: Vec<String>,
    /// Exact files, for file-level rules (`watch-tick-in-executors`).
    pub files: Vec<String>,
    /// Receiver-identifier suffixes for the sink rule.
    pub receivers: Vec<String>,
    /// Whether the rule also checks `#[cfg(test)]` / `#[test]` / `tests/` code.
    pub include_tests: bool,
}

impl RuleConfig {
    /// A config that applies the rule everywhere (used by the fixture harness).
    pub fn everywhere() -> Self {
        RuleConfig { scopes: vec![".".into()], ..Default::default() }
    }

    /// Whether `path` (workspace-relative, `/`-separated) is in scope.
    pub fn applies_to(&self, path: &str) -> bool {
        let in_scope = self.scopes.iter().any(|s| s == "." || has_prefix(path, s))
            || self.files.iter().any(|f| f == path);
        in_scope && !self.exclude.iter().any(|e| has_prefix(path, e))
    }
}

/// Path-component-aware prefix test: `crates/lftj` matches `crates/lftj/src/x.rs`
/// but not `crates/lftj2/src/x.rs`.
fn has_prefix(path: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    path == prefix || path.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('/'))
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes never linted at all.
    pub exclude: Vec<String>,
    /// rule id → its scope config. Ordered for deterministic reporting.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Parses the `lint.toml` text. Errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        let raw_lines: Vec<&str> = text.lines().collect();
        let mut idx = 0;
        while idx < raw_lines.len() {
            let lineno = idx + 1;
            let mut line = strip_comment(raw_lines[idx]).trim().to_string();
            idx += 1;
            // Multi-line arrays: keep folding lines until the `[` closes.
            while line.contains('[')
                && !line.starts_with('[')
                && !line.contains(']')
                && idx < raw_lines.len()
            {
                line.push(' ');
                line.push_str(strip_comment(raw_lines[idx]).trim());
                idx += 1;
            }
            let line = line.trim_end_matches(',').trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("lint.toml:{lineno}: unterminated section header"));
                };
                section = name.trim().to_string();
                if section != "lint" && section.strip_prefix("rule.").is_none() {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown section [{section}] (expected [lint] or [rule.<id>])"
                    ));
                }
                if let Some(rule) = section.strip_prefix("rule.") {
                    config.rules.entry(rule.to_string()).or_default();
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            let target = if section == "lint" {
                None
            } else if let Some(rule) = section.strip_prefix("rule.") {
                Some(rule.to_string())
            } else {
                return Err(format!("lint.toml:{lineno}: key outside any section"));
            };
            match target {
                None => match key {
                    "exclude" => config.exclude = parse_string_array(value, lineno)?,
                    other => {
                        return Err(format!("lint.toml:{lineno}: unknown [lint] key `{other}`"))
                    }
                },
                Some(rule) => {
                    let rc = config.rules.entry(rule).or_default();
                    match key {
                        "scopes" => rc.scopes = parse_string_array(value, lineno)?,
                        "exclude" => rc.exclude = parse_string_array(value, lineno)?,
                        "files" => rc.files = parse_string_array(value, lineno)?,
                        "receivers" => rc.receivers = parse_string_array(value, lineno)?,
                        "include_tests" => {
                            rc.include_tests = match value {
                                "true" => true,
                                "false" => false,
                                other => {
                                    return Err(format!(
                                        "lint.toml:{lineno}: include_tests must be true/false, got `{other}`"
                                    ))
                                }
                            }
                        }
                        other => {
                            return Err(format!("lint.toml:{lineno}: unknown rule key `{other}`"))
                        }
                    }
                }
            }
        }
        Ok(config)
    }
}

/// Drops a trailing `# comment`, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"a"` or `["a", "b"]` into a vector of strings.
fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let parse_one = |s: &str| -> Result<String, String> {
        let s = s.trim();
        s.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .map(str::to_string)
            .ok_or_else(|| format!("lint.toml:{lineno}: expected a quoted string, got `{s}`"))
    };
    if let Some(inner) = value.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err(format!("lint.toml:{lineno}: unterminated array"));
        };
        let inner = inner.trim().trim_end_matches(',').trim();
        if inner.is_empty() {
            return Ok(Vec::new());
        }
        inner.split(",").map(parse_one).collect()
    } else {
        Ok(vec![parse_one(value)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_schema() {
        let cfg = Config::parse(
            r#"
# top comment
[lint]
exclude = ["target"] # trailing comment

[rule.no-panic-in-engines]
scopes = ["crates/lftj/src", "crates/runtime/src"]
include_tests = false

[rule.watch-tick-in-executors]
files = ["crates/lftj/src/executor.rs"]

[rule.sink-controlflow-propagated]
scopes = ["."]
receivers = ["sink", "shard"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.exclude, ["target"]);
        let panic_rule = &cfg.rules["no-panic-in-engines"];
        assert!(panic_rule.applies_to("crates/lftj/src/executor.rs"));
        assert!(!panic_rule.applies_to("crates/query/src/cache.rs"));
        assert!(cfg.rules["sink-controlflow-propagated"].applies_to("crates/query/src/cache.rs"));
        assert_eq!(cfg.rules["watch-tick-in-executors"].files.len(), 1);
    }

    #[test]
    fn prefix_matching_is_component_aware() {
        let rc = RuleConfig { scopes: vec!["crates/lftj".into()], ..Default::default() };
        assert!(rc.applies_to("crates/lftj/src/lib.rs"));
        assert!(!rc.applies_to("crates/lftj2/src/lib.rs"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Config::parse("[rule.x]\nscopes = [unquoted]\n").unwrap_err();
        assert!(err.contains("lint.toml:2"), "{err}");
        let err = Config::parse("[weird]\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
        let err = Config::parse("[rule.x]\nbogus = true\n").unwrap_err();
        assert!(err.contains("unknown rule key"), "{err}");
    }

    #[test]
    fn files_make_a_rule_apply_to_exact_paths() {
        let rc = RuleConfig { files: vec!["a/b.rs".into()], ..Default::default() };
        assert!(rc.applies_to("a/b.rs"));
        assert!(!rc.applies_to("a/c.rs"));
    }
}
