//! `gj-lint`: workspace-native static analysis for the graph-join engine.
//!
//! The engine's load-bearing invariants — panic-free hot paths, poison-tolerant
//! locks, columnar intermediates, propagated sink `ControlFlow`, cooperative
//! watch ticks — were established by hand across PRs 4–6 and live nowhere the
//! compiler can see. This crate turns them into CI-enforced rules: a
//! dependency-free lexer (std only; the workspace has no registry access), a
//! token-pattern rule engine with per-line waivers, and a `lint.toml` mapping
//! each rule to the crates it polices.
//!
//! Run it on the tree:
//!
//! ```text
//! cargo run --release -p gj-lint            # human output, exit 1 on findings
//! cargo run --release -p gj-lint -- --json  # CI gate
//! cargo run --release -p gj-lint -- --list-rules
//! ```
//!
//! Waive a finding inline — the reason is mandatory and reviewed:
//!
//! ```text
//! intentional_panic(); // gj-lint: allow(no-panic-in-engines) — failpoint for the fault harness
//! ```
//!
//! The fixture corpus under `tests/fixtures/` pins every rule in both
//! directions (`bad.rs` fires exactly its `//~ ERROR` markers, `good.rs` stays
//! clean); `cargo test -p gj-lint` and the CI `--fixtures` step enforce it.

pub mod config;
pub mod engine;
pub mod fixtures;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod waiver;

pub use engine::{lint_file, lint_files, Finding};
