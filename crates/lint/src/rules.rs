//! The repo-specific rules: each one encodes an invariant PRs 4–6 established by
//! hand, so the next hot-path rewrite cannot silently regress it.
//!
//! Every rule is a token-stream pattern matcher over [`SourceFile`] — no AST, no
//! type information. Where a rule needs something the token stream cannot prove
//! (is this `.push` *the* `Sink::push`?) it uses a documented heuristic plus the
//! waiver mechanism as the escape hatch; the fixture corpus under
//! `tests/fixtures/` pins each rule's behaviour in both directions.

use crate::config::RuleConfig;
use crate::source::{matching, SourceFile};
use crate::Finding;

/// A lint rule: an id, a one-line description, and a token-level check.
pub trait Rule {
    /// Stable rule id (used in `lint.toml`, waivers, and reports).
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules` and the docs.
    fn describe(&self) -> &'static str;
    /// Appends findings for `file` to `out`.
    fn check(&self, file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>);
}

/// The full rule registry, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicInEngines),
        Box::new(PoisonTolerantLocks),
        Box::new(NoNestedValVec),
        Box::new(SinkControlflowPropagated),
        Box::new(SafetyCommentOnUnsafe),
        Box::new(WatchTickInExecutors),
        Box::new(NoDirectThreadSpawn),
        Box::new(PubItemHasDoc),
    ]
}

/// Ids of every rule, the waiver meta-rules included (the set waivers may name).
pub fn known_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = all_rules().iter().map(|r| r.id()).collect();
    ids.push(WAIVER_SYNTAX);
    ids.push(UNUSED_WAIVER);
    ids
}

/// Meta-rule id: malformed waiver (bad syntax, unknown rule, missing reason).
pub const WAIVER_SYNTAX: &str = "waiver-syntax";
/// Meta-rule id: a well-formed waiver that suppressed nothing.
pub const UNUSED_WAIVER: &str = "unused-waiver";

fn finding(rule: &dyn Rule, file: &SourceFile, lo: usize, message: String) -> Finding {
    Finding {
        rule: rule.id().to_string(),
        file: file.path.clone(),
        line: file.line_of(lo),
        col: file.col_of(lo),
        message,
    }
}

/// Skips an occurrence when the rule polices production code only.
fn skipped(file: &SourceFile, cfg: &RuleConfig, offset: usize) -> bool {
    !cfg.include_tests && file.is_test(offset)
}

// ---------------------------------------------------------------------------
// no-panic-in-engines
// ---------------------------------------------------------------------------

/// Engine hot paths must stay panic-free: PR 6 made every abort a typed
/// `ExecError` (gj-runtime), and a stray `unwrap()` re-introduces the failure mode
/// (a worker panic surfacing as `WorkerPanicked` instead of a real error) the
/// fault-tolerance work was built to remove.
pub struct NoPanicInEngines;

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

impl Rule for NoPanicInEngines {
    fn id(&self) -> &'static str {
        "no-panic-in-engines"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/unimplemented!/unreachable! in engine production code — abort via typed ExecError instead"
    }

    fn check(&self, file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if skipped(file, cfg, t.lo) {
                continue;
            }
            let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
            if PANIC_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].is_punct('.')
                && next_is('(')
            {
                out.push(finding(
                    self,
                    file,
                    t.lo,
                    format!(
                        ".{}() can panic in an engine path; return a typed error (ExecError / Result) instead",
                        t.text
                    ),
                ));
            }
            if PANIC_MACROS.contains(&t.text.as_str()) && next_is('!') {
                out.push(finding(
                    self,
                    file,
                    t.lo,
                    format!(
                        "{}! panics in an engine path; workers surface this as ExecError::WorkerPanicked — return a typed error instead",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// poison-tolerant-locks
// ---------------------------------------------------------------------------

/// Every `.lock()` must recover from poisoning: PR 6's contract is that a
/// panicked worker never leaves shared state unusable, which requires every
/// `Mutex::lock` result to pass through `PoisonError::into_inner` (or be
/// propagated with `?`). `.lock().unwrap()` re-poisons the well: the *next*
/// query on the same database dies for a fault the previous one already paid
/// for.
pub struct PoisonTolerantLocks;

impl Rule for PoisonTolerantLocks {
    fn id(&self) -> &'static str {
        "poison-tolerant-locks"
    }

    fn describe(&self) -> &'static str {
        "every .lock() result must go through PoisonError::into_inner (unwrap_or_else) or `?` — poisoned state stays usable"
    }

    fn check(&self, file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            // Match `.lock()`.
            if !(toks[i].is_ident("lock")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(')')))
            {
                continue;
            }
            if skipped(file, cfg, toks[i].lo) {
                continue;
            }
            // `self.lock()` is a poison-tolerant helper method by construction
            // (Mutex itself is never `self`); the helper's own body is checked.
            if i >= 2 && toks[i - 2].is_ident("self") {
                continue;
            }
            let after = i + 3;
            // Accepted: `.lock()?` — the caller propagates the PoisonError.
            if toks.get(after).is_some_and(|t| t.is_punct('?')) {
                continue;
            }
            // Accepted: `.lock().unwrap_or_else(<path containing into_inner>)`.
            if toks.get(after).is_some_and(|t| t.is_punct('.'))
                && toks.get(after + 1).is_some_and(|t| t.is_ident("unwrap_or_else"))
                && toks.get(after + 2).is_some_and(|t| t.is_punct('('))
            {
                if let Some(close) = matching(toks, after + 2, '(', ')') {
                    if toks[after + 3..close].iter().any(|t| t.is_ident("into_inner")) {
                        continue;
                    }
                }
            }
            out.push(finding(
                self,
                file,
                toks[i].lo,
                ".lock() must tolerate poisoning: follow it with .unwrap_or_else(PoisonError::into_inner) or propagate with `?`"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// no-nested-val-vec
// ---------------------------------------------------------------------------

/// The PR 4 regression guard: intermediates in the pairwise baselines are
/// columnar (one flat `len×arity` buffer); a `Vec<Vec<Val>>` re-introduces the
/// per-row allocation pattern the columnar rewrite removed (2.6–8.8× serial
/// speedups came from exactly this).
pub struct NoNestedValVec;

impl Rule for NoNestedValVec {
    fn id(&self) -> &'static str {
        "no-nested-val-vec"
    }

    fn describe(&self) -> &'static str {
        "no Vec<Vec<Val>> in the columnar baselines — use the flat len×arity Intermediate buffer"
    }

    fn check(&self, file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].is_ident("Vec")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('<'))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("Vec"))
                && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
                && toks.get(i + 4).is_some_and(|t| t.is_ident("Val"))
                && !skipped(file, cfg, toks[i].lo)
            {
                out.push(finding(
                    self,
                    file,
                    toks[i].lo,
                    "Vec<Vec<Val>> re-introduces per-row allocations; use the columnar flat-buffer Intermediate"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// sink-controlflow-propagated
// ---------------------------------------------------------------------------

/// Early termination is part of the sink protocol: a `sink.push(row);` whose
/// returned `ControlFlow` is dropped swallows `Break`, and `first_k` / `exists`
/// silently degrade into full scans. The receiver heuristic (identifiers ending
/// in `sink`, or named `shard`) is configured in `lint.toml`; a genuinely
/// different `push` on such a receiver takes a waiver.
pub struct SinkControlflowPropagated;

impl SinkControlflowPropagated {
    fn receiver_matches(cfg: &RuleConfig, name: &str) -> bool {
        let receivers: &[String] = &cfg.receivers;
        let lower = name.to_ascii_lowercase();
        receivers.iter().any(|r| lower == *r || lower.ends_with(r))
    }
}

impl Rule for SinkControlflowPropagated {
    fn id(&self) -> &'static str {
        "sink-controlflow-propagated"
    }

    fn describe(&self) -> &'static str {
        "every Sink::push / try_* call site must use the returned ControlFlow/Result — dropping it swallows early termination"
    }

    fn check(&self, file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let is_push = (toks[i].is_ident("push") || toks[i].is_ident("try_push"))
                && i > 1
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            if !is_push
                || !Self::receiver_matches(cfg, &toks[i - 2].text)
                || skipped(file, cfg, toks[i].lo)
            {
                continue;
            }
            let Some(close) = matching(toks, i + 1, '(', ')') else { continue };
            // Used: the call chains on (`.is_break()`, `?`) or is not followed by
            // `;` (tail expression, match scrutinee, …).
            if !toks.get(close + 1).is_some_and(|t| t.is_punct(';')) {
                continue;
            }
            // Followed by `;`: find the statement head and decide whether the
            // value is consumed there (`let flow = …;`, `return …;`, `x = …;`).
            let mut head = i - 2; // receiver ident
            while head > 0 {
                let prev = &toks[head - 1];
                if prev.is_punct(';') || prev.is_punct('{') || prev.is_punct('}') {
                    break;
                }
                head -= 1;
            }
            let stmt = &toks[head..i.saturating_sub(1)];
            let discarded_via_let_underscore = stmt.len() >= 3
                && stmt[0].is_ident("let")
                && stmt[1].is_ident("_")
                && stmt[2].is_punct('=');
            let consumed = !discarded_via_let_underscore
                && stmt.iter().any(|t| {
                    t.is_ident("let")
                        || t.is_ident("return")
                        || t.is_ident("if")
                        || t.is_ident("while")
                        || t.is_ident("match")
                        || t.is_punct('=')
                        || t.is_punct('(')
                        || t.is_punct(',')
                });
            if !consumed {
                out.push(finding(
                    self,
                    file,
                    toks[i].lo,
                    format!(
                        "the ControlFlow returned by {}.{}() is discarded — early termination (Break) would be swallowed; branch on it or propagate it",
                        toks[i - 2].text, toks[i].text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// safety-comment-on-unsafe
// ---------------------------------------------------------------------------

/// Every `unsafe` (block, fn, impl) must be introduced by a `// SAFETY:` comment
/// on the line(s) immediately above (or trailing on the same line) spelling out
/// why the invariants hold.
pub struct SafetyCommentOnUnsafe;

impl Rule for SafetyCommentOnUnsafe {
    fn id(&self) -> &'static str {
        "safety-comment-on-unsafe"
    }

    fn describe(&self) -> &'static str {
        "each unsafe block/fn/impl must be preceded by a `// SAFETY:` comment arguing the invariants"
    }

    fn check(&self, file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        for t in &file.tokens {
            if !t.is_ident("unsafe") || skipped(file, cfg, t.lo) {
                continue;
            }
            let line = file.line_of(t.lo);
            // A SAFETY comment is accepted on the same line or on the directly
            // preceding comment block (comments ending on line-1, line-2, …,
            // with nothing but comments in between).
            let mut ok = false;
            let mut expected_end = line; // same line counts (trailing comment)
            for c in file.comments.iter().rev() {
                if c.end_line > expected_end {
                    continue;
                }
                if c.end_line < expected_end.saturating_sub(1) {
                    break; // a gap of non-comment lines ends the block
                }
                if c.text.contains("SAFETY:") {
                    ok = true;
                    break;
                }
                expected_end = c.line.saturating_sub(1);
            }
            if !ok {
                out.push(finding(
                    self,
                    file,
                    t.lo,
                    "unsafe without a `// SAFETY:` comment immediately above explaining why the invariants hold"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// watch-tick-in-executors
// ---------------------------------------------------------------------------

/// Each engine executor file must reference the cooperative stop probe
/// (`ExecWatch` / `ctx.watch()`): PR 6 bounded cancellation latency by a tick in
/// every inner loop, and an executor rewrite that drops the watch silently
/// unbounds budget/cancel latency again. File-level: the `files` list in
/// `lint.toml` names the executors.
pub struct WatchTickInExecutors;

impl Rule for WatchTickInExecutors {
    fn id(&self) -> &'static str {
        "watch-tick-in-executors"
    }

    fn describe(&self) -> &'static str {
        "every engine executor file must reference ExecWatch (tick in the inner loop) so cancellation latency stays bounded"
    }

    fn check(&self, file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        if !cfg.files.contains(&file.path) {
            return;
        }
        let references_watch =
            file.tokens.iter().any(|t| t.is_ident("ExecWatch") || t.is_ident("tick"));
        if !references_watch {
            out.push(Finding {
                rule: self.id().to_string(),
                file: file.path.clone(),
                line: 1,
                col: 1,
                message:
                    "engine executor file has no ExecWatch/tick reference — inner loops no longer poll budgets/cancellation (see lint.toml [rule.watch-tick-in-executors])"
                        .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// no-direct-thread-spawn-outside-runtime
// ---------------------------------------------------------------------------

/// All production threading goes through `gj-runtime` (the morsel driver and its
/// panic isolation). A direct `thread::spawn` / `thread::scope` /
/// `thread::Builder` elsewhere escapes `catch_unwind` + typed `WorkerPanicked`
/// and the cooperative stop protocol.
pub struct NoDirectThreadSpawn;

impl Rule for NoDirectThreadSpawn {
    fn id(&self) -> &'static str {
        "no-direct-thread-spawn-outside-runtime"
    }

    fn describe(&self) -> &'static str {
        "no thread::spawn / thread::scope / thread::Builder outside gj-runtime — workers must run under the driver's panic isolation"
    }

    fn check(&self, file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("thread") || skipped(file, cfg, toks[i].lo) {
                continue;
            }
            if !(toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':')))
            {
                continue;
            }
            let Some(target) = toks.get(i + 3) else { continue };
            if target.is_ident("spawn") || target.is_ident("scope") || target.is_ident("Builder") {
                out.push(finding(
                    self,
                    file,
                    toks[i].lo,
                    format!(
                        "thread::{} outside gj-runtime: spawn work through the morsel driver (panic isolation, stop protocol) instead",
                        target.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// pub-item-has-doc
// ---------------------------------------------------------------------------

/// The façade crates are the public API surface; every `pub` item there carries
/// a doc comment. `pub use` re-exports and restricted `pub(crate)` / `pub(super)`
/// visibility are exempt.
pub struct PubItemHasDoc;

const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "union", "trait", "mod", "const", "static", "type", "unsafe", "async",
    "extern", "impl",
];

impl Rule for PubItemHasDoc {
    fn id(&self) -> &'static str {
        "pub-item-has-doc"
    }

    fn describe(&self) -> &'static str {
        "every pub item in the façade crates carries a doc comment (pub use / pub(crate) exempt)"
    }

    fn check(&self, file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("pub") || skipped(file, cfg, toks[i].lo) {
                continue;
            }
            let Some(next) = toks.get(i + 1) else { continue };
            if next.is_punct('(') || next.is_ident("use") {
                continue; // pub(crate)/pub(super) and re-exports are exempt
            }
            if !ITEM_KEYWORDS.contains(&next.text.as_str()) {
                continue; // not an item position (e.g. inside a macro)
            }
            // Walk back over attribute groups `#[…]` to the head of the item.
            let mut head = i;
            let mut doc_attr = false;
            while head >= 2 && toks[head - 1].is_punct(']') {
                // Find the `[` that this `]` closes, then expect `#` before it.
                let close = head - 1;
                let mut depth = 0usize;
                let mut open = None;
                for k in (0..=close).rev() {
                    if toks[k].is_punct(']') {
                        depth += 1;
                    } else if toks[k].is_punct('[') {
                        depth -= 1;
                        if depth == 0 {
                            open = Some(k);
                            break;
                        }
                    }
                }
                match open {
                    Some(k) if k >= 1 && toks[k - 1].is_punct('#') => {
                        // #[doc…] attributes count as documentation.
                        if toks[k + 1..close].iter().any(|t| t.is_ident("doc")) {
                            doc_attr = true;
                        }
                        head = k - 1;
                    }
                    _ => break,
                }
            }
            let head_line = toks[head].line;
            let documented = doc_attr
                || file.comments.iter().any(|c| c.is_outer_doc() && c.end_line + 1 == head_line);
            if !documented {
                out.push(finding(
                    self,
                    file,
                    toks[i].lo,
                    format!(
                        "undocumented pub {} in a façade crate — add a /// doc comment",
                        next.text
                    ),
                ));
            }
        }
    }
}
