//! Fixture: `.lock()` results that do not recover from poisoning.

use std::sync::Mutex;

fn unwraps(m: &Mutex<Vec<u32>>) -> usize {
    let g = m.lock().unwrap(); //~ ERROR poison-tolerant-locks
    g.len()
}

fn expects(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned") //~ ERROR poison-tolerant-locks
}

fn binds_the_result(m: &Mutex<u32>) {
    let _guard = m.lock(); //~ ERROR poison-tolerant-locks
}

fn recovers_without_into_inner(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|_| unimplemented!()) //~ ERROR poison-tolerant-locks
}
