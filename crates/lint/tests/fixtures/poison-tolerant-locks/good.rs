//! Fixture: the accepted poison-recovery forms.

use std::sync::{Mutex, PoisonError};

fn path_form(m: &Mutex<Vec<u32>>) -> usize {
    m.lock().unwrap_or_else(PoisonError::into_inner).len()
}

fn closure_form(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}

fn propagates(m: &Mutex<u32>) -> Result<u32, Box<dyn std::error::Error + '_>> {
    Ok(*m.lock()?)
}

struct Pool {
    inner: Mutex<u32>,
}

impl Pool {
    fn lock(&self) -> u32 {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn callers_go_through_the_helper(&self) -> u32 {
        // `self.lock()` is a poison-tolerant helper, never Mutex::lock itself.
        self.lock()
    }
}
