//! Fixture: properly argued `unsafe`.

fn block_comment_above(xs: &[u8]) -> u8 {
    // SAFETY: the caller guarantees `xs` is non-empty, so reading the first
    // element stays in bounds.
    unsafe { *xs.as_ptr() }
}

fn trailing_on_the_same_line(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() } // SAFETY: xs is non-empty, checked by the caller
}

/// # Safety
/// The pointer must be valid for reads.
///
// SAFETY: propagated contract — see the doc comment above.
unsafe fn documented_unsafe_fn(p: *const u8) -> u8 {
    // SAFETY: validity for reads is this function's own precondition.
    unsafe { *p }
}
