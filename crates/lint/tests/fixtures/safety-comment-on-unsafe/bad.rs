//! Fixture: `unsafe` without a SAFETY argument.

fn no_comment_at_all(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() } //~ ERROR safety-comment-on-unsafe
}

fn wrong_magic_word(xs: &[u8]) -> u8 {
    // Safety considerations were definitely pondered here, honest.
    unsafe { *xs.as_ptr() } //~ ERROR safety-comment-on-unsafe
}

fn comment_too_far_away(xs: &[u8]) -> u8 {
    // SAFETY: this argument is orphaned — two code lines separate it from the block.
    let n = xs.len();
    let m = n.saturating_sub(1);
    unsafe { *xs.as_ptr().add(m) } //~ ERROR safety-comment-on-unsafe
}
