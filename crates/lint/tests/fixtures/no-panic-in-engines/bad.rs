//! Fixture: every panicking construct fires in production engine code, and
//! test regions are exempt (the `#[cfg(test)]` module below must stay silent).

fn production(x: Option<u32>, y: Option<u32>) -> u32 {
    let a = x.unwrap(); //~ ERROR no-panic-in-engines
    let b = y.expect("present"); //~ ERROR no-panic-in-engines
    if a + b > 10 {
        panic!("too big"); //~ ERROR no-panic-in-engines
    }
    todo!() //~ ERROR no-panic-in-engines
}

fn more_macros(kind: u8) {
    match kind {
        0 => unimplemented!(), //~ ERROR no-panic-in-engines
        _ => unreachable!(), //~ ERROR no-panic-in-engines
    }
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely: none of these fire.
    fn in_tests(x: Option<u32>) -> u32 {
        x.unwrap() + x.expect("still fine")
    }
}
