//! Fixture: typed-error style and reviewed waivers stay clean.

fn typed_errors(x: Option<u32>) -> Result<u32, String> {
    let a = x.ok_or_else(|| "missing".to_string())?;
    Ok(a.saturating_add(1))
}

fn waived(x: Option<u32>) -> u32 {
    // gj-lint: allow(no-panic-in-engines) — fixture: reviewed exception, input validated upstream
    x.unwrap()
}

fn non_panicking_cousins(x: Option<u32>, unwrap: u32) -> u32 {
    // `unwrap_or_*` is fine, and a plain identifier named `unwrap` is not a call.
    x.unwrap_or_default() + x.unwrap_or(unwrap)
}
