//! Fixture: documented items, restricted visibility, and re-exports.

/// Documented the ordinary way.
pub fn documented() {}

/// Docs survive attribute stacks between them and the item.
#[derive(Clone)]
#[non_exhaustive]
pub struct WithAttrs;

#[doc = "attribute-style documentation counts too"]
pub struct AttrDocs;

pub(crate) fn restricted_visibility_is_exempt() {}

pub use std::cmp::Ordering;

fn private_items_need_nothing() {}
