//! Fixture: undocumented pub items in a façade crate.

pub fn undocumented() {} //~ ERROR pub-item-has-doc

pub struct Bare; //~ ERROR pub-item-has-doc

#[derive(Clone)]
pub enum AttrsAloneAreNotDocs { //~ ERROR pub-item-has-doc
    A,
}

pub mod undocumented_module; //~ ERROR pub-item-has-doc
