//! Fixture: a waiver that actually suppresses a finding is not "unused".

fn used_waiver(x: Option<u32>) -> u32 {
    x.unwrap() // gj-lint: allow(no-panic-in-engines) — fixture: reviewed, input validated upstream
}

fn one_waiver_two_findings(x: Option<u32>, y: Option<u32>) -> u32 {
    // gj-lint: allow(no-panic-in-engines) — fixture: both unwraps below are covered by one waiver
    x.unwrap() + y.unwrap()
}
