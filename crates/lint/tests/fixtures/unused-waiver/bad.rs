//! Fixture: waivers that suppress nothing are stale and must be removed.

fn stale_standalone(x: Option<u32>) -> u32 {
    // gj-lint: allow(no-panic-in-engines) — stale: the unwrap this excused is long gone
    //~^ ERROR unused-waiver
    x.map_or(0, |v| v)
}

fn stale_trailing(x: Option<u32>) -> u32 {
    let v = x.map_or(0, |v| v); // gj-lint: allow(no-panic-in-engines) — waives a line with nothing on it
    //~^ ERROR unused-waiver
    v
}
