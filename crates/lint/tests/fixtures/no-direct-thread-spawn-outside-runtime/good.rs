//! Fixture: work routed through the runtime driver, and test-only spawns.

fn through_the_driver(work: Vec<Job>) -> Report {
    // The driver owns panic isolation and the cooperative stop protocol.
    gj_runtime::drive(&work)
}

fn mentions_thread_without_spawning() -> &'static str {
    // The identifier alone (e.g. in strings or names) is not a spawn.
    "one thread per worker"
}

#[cfg(test)]
mod tests {
    // Tests may use raw threads (this rule leaves `include_tests` off).
    fn spawn_in_test() {
        let h = std::thread::spawn(|| ());
        let _ = h.join();
    }
}
