//! Fixture: direct threading primitives outside the runtime crate.

use std::thread;

fn bare_spawn() {
    let handle = thread::spawn(|| 1 + 1); //~ ERROR no-direct-thread-spawn-outside-runtime
    let _ = handle.join();
}

fn scoped(xs: &[i64]) -> usize {
    std::thread::scope(|s| { //~ ERROR no-direct-thread-spawn-outside-runtime
        s.spawn(|| xs.len());
        xs.len()
    })
}

fn named_builder() {
    let _builder = thread::Builder::new().name("rogue".into()); //~ ERROR no-direct-thread-spawn-outside-runtime
}
