//! Fixture: consumed `ControlFlow`, and non-sink receivers.

use std::ops::ControlFlow;

fn branches(sink: &mut CollectSink, row: &[i64]) -> bool {
    if sink.push(row).is_break() {
        return true;
    }
    false
}

fn binds(shard: &mut Shard, row: &[i64]) -> ControlFlow<()> {
    let flow = shard.push(row);
    flow
}

fn tail_position(sink: &mut CollectSink, row: &[i64]) -> ControlFlow<()> {
    sink.push(row)
}

fn matched(sink: &mut CollectSink, row: &[i64]) -> u32 {
    match sink.push(row) {
        ControlFlow::Continue(()) => 0,
        ControlFlow::Break(()) => 1,
    }
}

fn other_receivers_are_not_sinks(vec: &mut Vec<i64>, x: i64) {
    vec.push(x);
}
