//! Fixture: sink pushes whose returned `ControlFlow` is dropped.

use std::ops::ControlFlow;

fn drops_the_flow(sink: &mut CollectSink, row: &[i64]) {
    sink.push(row); //~ ERROR sink-controlflow-propagated
}

fn explicitly_discards(shard: &mut Shard, row: &[i64]) {
    let _ = shard.push(row); //~ ERROR sink-controlflow-propagated
}

fn drops_in_a_loop(my_sink: &mut CollectSink, rows: &[&[i64]]) {
    for row in rows {
        my_sink.push(row); //~ ERROR sink-controlflow-propagated
    }
}
