//! Fixture: the flat columnar shape, and nested vectors of *other* types.

type Val = i64;

/// The blessed shape: one flat `len × arity` buffer.
struct Intermediate {
    vals: Vec<Val>,
    arity: usize,
}

fn rows(inter: &Intermediate) -> usize {
    inter.vals.len() / inter.arity.max(1)
}

fn nested_of_other_types(ids: Vec<Vec<usize>>) -> usize {
    ids.len()
}
