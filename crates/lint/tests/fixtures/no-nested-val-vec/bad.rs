//! Fixture: nested `Vec<Vec<Val>>` intermediates (the shape the columnar
//! rewrite removed) fire, in test code too (`include_tests = true` in
//! lint.toml; the fixture harness exercises the production path).

type Val = i64;

struct NestedIntermediate {
    rows: Vec<Vec<Val>>, //~ ERROR no-nested-val-vec
}

fn materialise() -> Vec<Vec<Val>> { //~ ERROR no-nested-val-vec
    Vec::new()
}

fn with_spacing(rows: Vec<Vec<Val>>) -> usize { //~ ERROR no-nested-val-vec
    rows.len()
}
