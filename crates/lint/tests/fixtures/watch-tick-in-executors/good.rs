//! An executor whose inner loop ticks the watch: budget and cancellation
//! latency stay bounded by the loop body.

pub fn run_join(rows: &[i64], watch: &ExecWatch) -> u64 {
    let mut n = 0;
    for pair in rows.windows(2) {
        if watch.tick() {
            break;
        }
        if pair[0] == pair[1] {
            n += 1;
        }
    }
    n
}
