//! An "executor" that never polls the cooperative stop probe. //~ ERROR watch-tick-in-executors

pub fn run_join(rows: &[i64]) -> u64 {
    let mut n = 0;
    for pair in rows.windows(2) {
        if pair[0] == pair[1] {
            n += 1;
        }
    }
    n
}
