//! Fixture: well-formed waivers parse silently and suppress their findings.

fn trailing_form(x: Option<u32>) -> u32 {
    x.unwrap() // gj-lint: allow(no-panic-in-engines) — fixture: validated at construction time
}

fn standalone_form(x: Option<u32>) -> u32 {
    // gj-lint: allow(no-panic-in-engines) — fixture: the waiver on this line covers the next
    x.unwrap()
}

fn multi_rule_form(x: Option<u32>) -> u32 {
    // gj-lint: allow(no-panic-in-engines, poison-tolerant-locks) — fixture: one reviewed reason for both
    x.unwrap()
}
