//! Fixture: malformed waivers are findings themselves — and since a malformed
//! waiver suppresses nothing, the original finding surfaces alongside it.

fn missing_reason(x: Option<u32>) -> u32 {
    x.unwrap() // gj-lint: allow(no-panic-in-engines)
    //~^ ERROR waiver-syntax
    //~^^ ERROR no-panic-in-engines
}

fn reason_too_short(x: Option<u32>) -> u32 {
    x.unwrap() // gj-lint: allow(no-panic-in-engines) — ok
    //~^ ERROR waiver-syntax
    //~^^ ERROR no-panic-in-engines
}

fn unknown_rule(x: Option<u32>) -> u32 {
    x.unwrap() // gj-lint: allow(no-such-rule) — a perfectly reasonable-length reason
    //~^ ERROR waiver-syntax
    //~^^ ERROR no-panic-in-engines
}

fn not_the_allow_form(x: Option<u32>) -> u32 {
    x.unwrap() // gj-lint: suppress(no-panic-in-engines) — wrong verb entirely
    //~^ ERROR waiver-syntax
    //~^^ ERROR no-panic-in-engines
}
