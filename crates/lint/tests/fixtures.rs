//! Self-test: every rule's fixture corpus must produce *exactly* the findings
//! its `//~ ERROR` markers declare — no more (false positives), no fewer
//! (false negatives). This is the same check CI runs via `gj-lint --fixtures`.

use std::collections::BTreeSet;
use std::path::PathBuf;

use gj_lint::fixtures::check_fixtures;
use gj_lint::rules::all_rules;

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn corpus_matches_markers_exactly() {
    let report = check_fixtures(&fixtures_root()).expect("corpus must be readable");
    assert!(
        report.mismatches.is_empty(),
        "fixture corpus diverged:\n{}",
        report.mismatches.join("\n")
    );
    assert!(report.findings.len() >= 20, "suspiciously few findings: {}", report.findings.len());
}

#[test]
fn every_rule_has_a_fixture_directory_in_both_directions() {
    let root = fixtures_root();
    let mut expected: BTreeSet<String> = all_rules().iter().map(|r| r.id().to_string()).collect();
    expected.insert("waiver-syntax".to_string());
    expected.insert("unused-waiver".to_string());
    for rule in &expected {
        let dir = root.join(rule);
        assert!(dir.is_dir(), "rule `{rule}` has no fixture directory");
        assert!(dir.join("bad.rs").is_file(), "rule `{rule}` has no bad.rs fixture");
        assert!(dir.join("good.rs").is_file(), "rule `{rule}` has no good.rs fixture");
    }
    // And no orphan directories that name a rule which no longer exists —
    // check_fixtures already rejects those, but make the intent explicit here.
    for entry in std::fs::read_dir(&root).expect("fixtures root") {
        let name = entry.expect("dir entry").file_name().to_string_lossy().to_string();
        assert!(expected.contains(&name), "fixture dir `{name}` names no known rule");
    }
}

#[test]
fn bad_fixtures_fire_and_good_fixtures_stay_clean() {
    let report = check_fixtures(&fixtures_root()).expect("corpus must be readable");
    let bad_files: BTreeSet<&str> = report.findings.iter().map(|f| f.file.as_str()).collect();
    for file in &bad_files {
        assert!(file.ends_with("/bad.rs"), "finding in a good fixture: {file}");
    }
    // Every bad.rs produced at least one finding.
    for rule_dir in std::fs::read_dir(fixtures_root()).expect("fixtures root") {
        let dir = rule_dir.expect("dir entry");
        let bad = format!("{}/bad.rs", dir.file_name().to_string_lossy());
        assert!(bad_files.contains(bad.as_str()), "{bad} produced no findings at all");
    }
}
