//! The specialised graph-engine baseline (GraphLab stand-in).
//!
//! The paper compares against GraphLab's hand-written triangle counting program and a
//! community-written 4-clique program. Those are not general query processors: they
//! work directly on adjacency lists and support exactly those patterns. This module
//! provides the equivalent: clique counting by sorted-neighbourhood intersection over
//! the CSR representation — very fast, but nothing beyond cliques, which is precisely
//! the trade-off the paper discusses (specialised engines versus a general-purpose
//! engine with optimal joins).

use gj_runtime::ExecCtx;
use gj_storage::{Csr, Graph};

/// A graph loaded into the specialised engine.
#[derive(Debug, Clone)]
pub struct GraphEngine {
    csr: Csr,
}

impl GraphEngine {
    /// Loads a graph (treated as undirected; the CSR must be symmetric, which
    /// [`Graph::new_undirected`] guarantees).
    pub fn load(graph: &Graph) -> Self {
        GraphEngine { csr: graph.to_csr() }
    }

    /// Counts triangles with the node-iterator algorithm: for every edge `(a, b)`
    /// with `a < b`, intersect the neighbour lists above `b`.
    pub fn triangle_count(&self) -> u64 {
        self.csr.triangle_count()
    }

    /// [`triangle_count`](Self::triangle_count) under an execution context: polls
    /// `ctx` once per edge and stops on a trip (an aborted run returns a partial
    /// count — the caller must consult the context's monitor).
    pub fn triangle_count_ctx(&self, ctx: &ExecCtx<'_>) -> u64 {
        let mut watch = ctx.watch();
        let mut count = 0u64;
        let mut above_b: Vec<u32> = Vec::new();
        for a in 0..self.csr.num_nodes() as u32 {
            let na = self.csr.neighbors(a);
            for &b in na.iter().filter(|&&b| b > a) {
                if watch.tick() {
                    return count;
                }
                above_b.clear();
                intersect_into(na, self.csr.neighbors(b), b, &mut above_b);
                count += above_b.len() as u64;
            }
        }
        count
    }

    /// Counts 4-cliques: for every triangle `a < b < c`, count the common neighbours
    /// `d > c` of all three vertices.
    pub fn four_clique_count(&self) -> u64 {
        self.four_clique_count_ctx(&ExecCtx::none())
    }

    /// [`four_clique_count`](Self::four_clique_count) under an execution context:
    /// polls `ctx` once per edge and stops on a trip (an aborted run returns a
    /// partial count — the caller must consult the context's monitor).
    pub fn four_clique_count_ctx(&self, ctx: &ExecCtx<'_>) -> u64 {
        let mut watch = ctx.watch();
        let n = self.csr.num_nodes();
        let mut count = 0u64;
        let mut common_ab: Vec<u32> = Vec::new();
        for a in 0..n as u32 {
            let na = self.csr.neighbors(a);
            for &b in na.iter().filter(|&&b| b > a) {
                if watch.tick() {
                    return count;
                }
                let nb = self.csr.neighbors(b);
                // Common neighbours of a and b that are greater than b.
                common_ab.clear();
                intersect_into(na, nb, b, &mut common_ab);
                for (i, &c) in common_ab.iter().enumerate() {
                    let nc = self.csr.neighbors(c);
                    // d must be a common neighbour of a, b (i.e. in common_ab after c)
                    // and also adjacent to c.
                    for &d in &common_ab[i + 1..] {
                        if nc.binary_search(&d).is_ok() {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }
}

/// Pushes the intersection of two sorted lists, restricted to values `> floor`, into
/// `out`.
fn intersect_into(xs: &[u32], ys: &[u32], floor: u32, out: &mut Vec<u32>) {
    let mut i = xs.partition_point(|&x| x <= floor);
    let mut j = ys.partition_point(|&y| y <= floor);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(xs[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{naive_count, CatalogQuery, Instance};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(seed: u64, n: u32, p: f64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|_| rng.gen_bool(p))
            .collect();
        Graph::new_undirected(n as usize, edges)
    }

    #[test]
    fn k4_has_four_triangles_and_one_four_clique() {
        let k4 = Graph::new_undirected(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let engine = GraphEngine::load(&k4);
        assert_eq!(engine.triangle_count(), 4);
        assert_eq!(engine.four_clique_count(), 1);
    }

    #[test]
    fn k5_counts() {
        let edges: Vec<(u32, u32)> = (0..5).flat_map(|a| (a + 1..5).map(move |b| (a, b))).collect();
        let k5 = Graph::new_undirected(5, edges);
        let engine = GraphEngine::load(&k5);
        assert_eq!(engine.triangle_count(), 10); // C(5,3)
        assert_eq!(engine.four_clique_count(), 5); // C(5,4)
    }

    #[test]
    fn counts_agree_with_the_relational_definition() {
        let g = random_graph(41, 35, 0.3);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        let engine = GraphEngine::load(&g);
        assert_eq!(engine.triangle_count(), naive_count(&inst, &CatalogQuery::ThreeClique.query()));
        assert_eq!(
            engine.four_clique_count(),
            naive_count(&inst, &CatalogQuery::FourClique.query())
        );
        // The watch-polling variants count the same patterns.
        assert_eq!(engine.triangle_count_ctx(&ExecCtx::none()), engine.triangle_count());
        assert_eq!(engine.four_clique_count_ctx(&ExecCtx::none()), engine.four_clique_count());
    }

    #[test]
    fn triangle_free_graph_has_zero_counts() {
        // Bipartite graphs have no odd cycles, hence no triangles or 4-cliques.
        let edges: Vec<(u32, u32)> = (0..10).flat_map(|a| (10..20).map(move |b| (a, b))).collect();
        let g = Graph::new_undirected(20, edges);
        let engine = GraphEngine::load(&g);
        assert_eq!(engine.triangle_count(), 0);
        assert_eq!(engine.four_clique_count(), 0);
    }
}
