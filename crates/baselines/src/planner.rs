//! A Selinger-style pairwise join optimizer.
//!
//! The paper's point of comparison is the classical architecture: enumerate two-way
//! join orders with dynamic programming, pick the cheapest under textbook cardinality
//! estimates, and execute the chosen order pairwise with materialised intermediates.
//! This module implements the left-deep variant of that optimizer (what System R and
//! PostgreSQL's default search do for this many relations), with the standard
//! System-R estimate `|L ⋈ R| = |L|·|R| / Π_{v shared} max(ndv_L(v), ndv_R(v))`.
//!
//! The optimizer is deliberately *not* given any knowledge of worst-case bounds: its
//! blind spot on cyclic self-joins — choosing plans whose intermediates are orders of
//! magnitude larger than the final result — is precisely the behaviour the paper
//! contrasts with worst-case optimal joins.

use gj_query::{Query, VarId};
use gj_storage::Relation;
use std::collections::HashMap;

/// A left-deep pairwise join plan: atoms are joined in this order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// Atom indices in join order (the first is the base of the left-deep chain).
    pub order: Vec<usize>,
    /// The optimizer's estimate of the total number of materialised intermediate
    /// rows (for diagnostics; the executor reports actual numbers).
    pub estimated_rows: u64,
}

/// Per-atom statistics used by the estimator.
struct AtomStats {
    cardinality: f64,
    /// Distinct values per variable of the atom.
    ndv: HashMap<VarId, f64>,
}

/// Statistics of a partial (left-deep) result.
#[derive(Clone)]
struct PartialStats {
    cardinality: f64,
    ndv: HashMap<VarId, f64>,
    cost: f64,
    order: Vec<usize>,
}

/// Plans a left-deep pairwise join order for `query`, given each atom's relation.
///
/// Connected sub-plans are preferred (cartesian products are only considered when a
/// query is disconnected), matching what real pairwise optimizers do.
pub fn plan_left_deep(query: &Query, relations: &[&Relation]) -> JoinPlan {
    assert_eq!(relations.len(), query.num_atoms(), "one relation per atom required");
    let m = query.num_atoms();
    assert!(m >= 1, "cannot plan an empty query");
    assert!(m <= 16, "the DP planner supports at most 16 atoms");

    let atom_stats: Vec<AtomStats> = query
        .atoms
        .iter()
        .zip(relations)
        .map(|(atom, rel)| {
            let mut ndv = HashMap::new();
            for (col, &v) in atom.vars.iter().enumerate() {
                ndv.insert(v, rel.project(&[col]).len().max(1) as f64);
            }
            AtomStats { cardinality: rel.len().max(1) as f64, ndv }
        })
        .collect();

    // DP over subsets: best left-deep partial plan per subset of atoms.
    let mut best: Vec<Option<PartialStats>> = vec![None; 1 << m];
    for (i, stats) in atom_stats.iter().enumerate() {
        best[1 << i] = Some(PartialStats {
            cardinality: stats.cardinality,
            ndv: stats.ndv.clone(),
            cost: 0.0,
            order: vec![i],
        });
    }

    for subset in 1usize..(1 << m) {
        let Some(partial) = best[subset].clone() else { continue };
        for next in 0..m {
            if subset & (1 << next) != 0 {
                continue;
            }
            let connected = query.atoms[next].vars.iter().any(|v| partial.ndv.contains_key(v));
            // Prefer connected extensions; allow a cartesian step only if no atom
            // outside the subset connects to it (disconnected query).
            if !connected {
                let any_connected = (0..m).any(|j| {
                    subset & (1 << j) == 0
                        && query.atoms[j].vars.iter().any(|v| partial.ndv.contains_key(v))
                });
                if any_connected {
                    continue;
                }
            }
            let extended = extend(&partial, next, &atom_stats[next], &query.atoms[next].vars);
            let slot = &mut best[subset | (1 << next)];
            let better = match slot {
                None => true,
                Some(existing) => extended.cost < existing.cost,
            };
            if better {
                *slot = Some(extended);
            }
        }
    }

    let Some(full) = best[(1 << m) - 1].clone() else {
        // The DP always fills the full subset (every singleton seeds it and every
        // extension step is admissible); if that invariant ever breaks, degrade
        // to textual atom order instead of taking the whole query down.
        return JoinPlan { order: (0..m).collect(), estimated_rows: u64::MAX };
    };
    JoinPlan { order: full.order, estimated_rows: full.cost.min(u64::MAX as f64) as u64 }
}

/// Extends a partial plan with one more atom, producing the new statistics under the
/// System-R estimate. The cost accumulates the sizes of all materialised
/// intermediates (the final result included).
fn extend(
    partial: &PartialStats,
    atom_idx: usize,
    atom: &AtomStats,
    atom_vars: &[VarId],
) -> PartialStats {
    let mut selectivity = 1.0;
    for v in atom_vars {
        if let Some(&left_ndv) = partial.ndv.get(v) {
            let right_ndv = atom.ndv.get(v).copied().unwrap_or(1.0);
            selectivity /= left_ndv.max(right_ndv).max(1.0);
        }
    }
    let cardinality = (partial.cardinality * atom.cardinality * selectivity).max(1.0);
    let mut ndv = partial.ndv.clone();
    for (v, &d) in &atom.ndv {
        let entry = ndv.entry(*v).or_insert(d);
        *entry = entry.min(d).min(cardinality);
    }
    for d in ndv.values_mut() {
        *d = d.min(cardinality);
    }
    let mut order = partial.order.clone();
    order.push(atom_idx);
    PartialStats { cardinality, ndv, cost: partial.cost + cardinality, order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::CatalogQuery;

    fn relations_for<'a>(
        query: &Query,
        edge: &'a Relation,
        samples: &'a HashMap<String, Relation>,
    ) -> Vec<&'a Relation> {
        query
            .atoms
            .iter()
            .map(|a| {
                if a.relation == "edge" {
                    edge
                } else {
                    samples.get(&a.relation).expect("sample relation present")
                }
            })
            .collect()
    }

    fn dense_edge() -> Relation {
        Relation::from_pairs(
            (0..40i64).flat_map(|a| (0..40i64).filter(move |&b| b != a).map(move |b| (a, b))),
        )
    }

    #[test]
    fn plan_covers_every_atom_exactly_once() {
        let q = CatalogQuery::FourClique.query();
        let edge = dense_edge();
        let samples = HashMap::new();
        let plan = plan_left_deep(&q, &relations_for(&q, &edge, &samples));
        let mut order = plan.order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..q.num_atoms()).collect::<Vec<_>>());
    }

    #[test]
    fn planner_starts_from_selective_samples_on_path_queries() {
        // The paper observes PostgreSQL starting from the small node samples for
        // 3-path; with a tiny v1/v2 the estimator must do the same.
        let q = CatalogQuery::ThreePath.query();
        let edge = dense_edge();
        let mut samples = HashMap::new();
        samples.insert("v1".to_string(), Relation::from_values(vec![1]));
        samples.insert("v2".to_string(), Relation::from_values(vec![2, 3]));
        let plan = plan_left_deep(&q, &relations_for(&q, &edge, &samples));
        let first_atom = &q.atoms[plan.order[0]];
        assert!(
            first_atom.relation == "v1" || first_atom.relation == "v2",
            "expected the plan to start from a sample, got {}",
            first_atom.relation
        );
    }

    #[test]
    fn connected_plans_preferred_over_cartesian_products() {
        let q = CatalogQuery::ThreeClique.query();
        let edge = dense_edge();
        let samples = HashMap::new();
        let plan = plan_left_deep(&q, &relations_for(&q, &edge, &samples));
        // Each successive atom must share a variable with the prefix.
        let mut seen: Vec<VarId> = q.atoms[plan.order[0]].vars.clone();
        for &idx in &plan.order[1..] {
            assert!(
                q.atoms[idx].vars.iter().any(|v| seen.contains(v)),
                "atom {idx} does not connect to the prefix"
            );
            seen.extend(&q.atoms[idx].vars);
        }
    }

    #[test]
    fn estimates_grow_with_input_size() {
        let q = CatalogQuery::ThreeClique.query();
        let small = Relation::from_pairs((0..10i64).map(|a| (a, (a + 1) % 10)));
        let samples = HashMap::new();
        let plan_small = plan_left_deep(&q, &relations_for(&q, &small, &samples));
        let plan_big = plan_left_deep(&q, &relations_for(&q, &dense_edge(), &samples));
        assert!(plan_big.estimated_rows > plan_small.estimated_rows);
    }
}
