//! # gj-baselines
//!
//! The comparison systems of the paper's evaluation (Section 5.1), re-implemented as
//! libraries so the benchmark harness can run them side by side with LFTJ and
//! Minesweeper:
//!
//! * [`pairwise`] — a Selinger-style pairwise join engine: a dynamic-programming
//!   optimizer over two-way join orders with textbook cardinality estimation, and a
//!   physical layer that *materialises every intermediate result*, executed with
//!   either hash joins (the row-store / PostgreSQL stand-in) or sort-merge joins (the
//!   column-store / MonetDB stand-in). This reproduces exactly the behaviour the
//!   paper attributes to the relational competitors: on cyclic self-joins the
//!   intermediates explode, regardless of the storage format. The intermediates
//!   themselves are columnar (one flat `len × arity` buffer, no per-row
//!   allocations — see [`intermediate`]), and a prepared [`PairwisePlan`] runs
//!   either serially or over the `gj-runtime` morsel driver ([`PairwiseMorsels`])
//!   with output identical to the serial emission.
//! * [`graph_engine`] — a hand-specialised clique counter over CSR adjacency lists
//!   (neighbourhood intersection), standing in for GraphLab's triangle-count /
//!   4-clique programs: very fast, but limited to exactly those patterns.
//!
//! The pairwise engine accepts a budget on materialised rows so the harness can
//! report "timeout" rows (the paper's `-` cells) without actually exhausting memory.

pub mod graph_engine;
pub mod intermediate;
pub mod pairwise;
pub mod planner;

pub use graph_engine::GraphEngine;
pub use intermediate::{Intermediate, JoinCols, RightIndex};
pub use pairwise::{
    pairwise_count, pairwise_count_with_stats, pairwise_run, BaselineError, ExecLimits, JoinAlgo,
    PairwiseMorsels, PairwisePlan, PairwiseStats, PairwiseWorker,
};
pub use planner::{plan_left_deep, JoinPlan};
