//! Materialised intermediate results and the pairwise physical operators.
//!
//! A Selinger-style engine evaluates a join query as a sequence of two-way joins,
//! materialising each intermediate result. [`Intermediate`] is that materialised
//! table: a variable schema plus rows. Two physical join implementations are
//! provided — [`Intermediate::hash_join`] (row-store stand-in) and
//! [`Intermediate::sort_merge_join`] (column-store stand-in) — along with the
//! selection and filter operators the executor needs.

use gj_query::VarId;
use gj_storage::{Relation, Val};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// A materialised intermediate relation over query variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Intermediate {
    /// The variables of each column.
    pub vars: Vec<VarId>,
    /// The rows (no particular order, duplicates preserved as in SQL semantics over
    /// set inputs — they cannot arise here because base relations are sets and
    /// schemas never drop columns).
    pub rows: Vec<Vec<Val>>,
}

impl Intermediate {
    /// Builds an intermediate from a base relation and the variables of its atom.
    /// Atoms never repeat a variable (checked by the query validator).
    pub fn from_relation(relation: &Relation, vars: &[VarId]) -> Self {
        Intermediate { vars: vars.to_vec(), rows: relation.to_rows() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the intermediate is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column index of `var`, if present.
    pub fn col_of(&self, var: VarId) -> Option<usize> {
        self.vars.iter().position(|&v| v == var)
    }

    /// The variables shared with another intermediate.
    pub fn shared_vars(&self, other: &Intermediate) -> Vec<VarId> {
        self.vars.iter().copied().filter(|v| other.col_of(*v).is_some()).collect()
    }

    /// Output schema of joining `self` with `other`: self's columns followed by
    /// other's non-shared columns.
    fn join_schema(&self, other: &Intermediate) -> (Vec<VarId>, Vec<usize>) {
        let mut vars = self.vars.clone();
        let mut extra_cols = Vec::new();
        for (i, &v) in other.vars.iter().enumerate() {
            if self.col_of(v).is_none() {
                vars.push(v);
                extra_cols.push(i);
            }
        }
        (vars, extra_cols)
    }

    /// Key of a row on the given columns.
    fn key(row: &[Val], cols: &[usize]) -> Vec<Val> {
        cols.iter().map(|&c| row[c]).collect()
    }

    /// The output schema of joining `self` with `other` (self's variables followed
    /// by other's non-shared ones) — the row shape the streamed joins emit.
    pub fn joined_vars(&self, other: &Intermediate) -> Vec<VarId> {
        self.join_schema(other).0
    }

    /// Streams the hash join with `other` instead of materialising it: each joined
    /// row (in [`joined_vars`](Self::joined_vars) column order) is written into one
    /// scratch buffer and passed to `emit`; the scan stops as soon as `emit`
    /// breaks. Left rows are probed in their stored order, so the emission order is
    /// deterministic. Returns the number of rows emitted.
    pub fn hash_join_streamed(
        &self,
        other: &Intermediate,
        emit: &mut impl FnMut(&[Val]) -> ControlFlow<()>,
    ) -> u64 {
        let shared = self.shared_vars(other);
        let left_cols: Vec<usize> = shared.iter().map(|&v| self.col_of(v).unwrap()).collect();
        let right_cols: Vec<usize> = shared.iter().map(|&v| other.col_of(v).unwrap()).collect();
        let (_, extra_cols) = self.join_schema(other);

        let mut table: HashMap<Vec<Val>, Vec<&Vec<Val>>> = HashMap::new();
        for row in &other.rows {
            table.entry(Self::key(row, &right_cols)).or_default().push(row);
        }
        let mut out = vec![0; self.vars.len() + extra_cols.len()];
        let mut emitted = 0;
        for lrow in &self.rows {
            if let Some(matches) = table.get(&Self::key(lrow, &left_cols)) {
                for rrow in matches {
                    out[..lrow.len()].copy_from_slice(lrow);
                    for (slot, &c) in out[lrow.len()..].iter_mut().zip(&extra_cols) {
                        *slot = rrow[c];
                    }
                    emitted += 1;
                    if emit(&out).is_break() {
                        return emitted;
                    }
                }
            }
        }
        emitted
    }

    /// Streams the sort-merge join with `other` (see
    /// [`hash_join_streamed`](Self::hash_join_streamed)): both sides are sorted on
    /// the shared variables and merged, emitting the product of each equal-key run
    /// row by row. Returns the number of rows emitted.
    pub fn sort_merge_join_streamed(
        &self,
        other: &Intermediate,
        emit: &mut impl FnMut(&[Val]) -> ControlFlow<()>,
    ) -> u64 {
        let shared = self.shared_vars(other);
        if shared.is_empty() {
            // Degenerate to the hash join's cartesian handling.
            return self.hash_join_streamed(other, emit);
        }
        let left_cols: Vec<usize> = shared.iter().map(|&v| self.col_of(v).unwrap()).collect();
        let right_cols: Vec<usize> = shared.iter().map(|&v| other.col_of(v).unwrap()).collect();
        let (_, extra_cols) = self.join_schema(other);

        let mut left: Vec<&Vec<Val>> = self.rows.iter().collect();
        let mut right: Vec<&Vec<Val>> = other.rows.iter().collect();
        left.sort_by_key(|r| Self::key(r, &left_cols));
        right.sort_by_key(|r| Self::key(r, &right_cols));

        let mut out = vec![0; self.vars.len() + extra_cols.len()];
        let mut emitted = 0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() && j < right.len() {
            let lk = Self::key(left[i], &left_cols);
            let rk = Self::key(right[j], &right_cols);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let i_end = (i..left.len())
                        .find(|&x| Self::key(left[x], &left_cols) != lk)
                        .unwrap_or(left.len());
                    let j_end = (j..right.len())
                        .find(|&x| Self::key(right[x], &right_cols) != rk)
                        .unwrap_or(right.len());
                    for lrow in &left[i..i_end] {
                        for rrow in &right[j..j_end] {
                            out[..lrow.len()].copy_from_slice(lrow);
                            for (slot, &c) in out[lrow.len()..].iter_mut().zip(&extra_cols) {
                                *slot = rrow[c];
                            }
                            emitted += 1;
                            if emit(&out).is_break() {
                                return emitted;
                            }
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        emitted
    }

    /// Hash join with `other` on all shared variables (cartesian product when there
    /// are none, as a pairwise plan occasionally requires).
    pub fn hash_join(&self, other: &Intermediate) -> Intermediate {
        let shared = self.shared_vars(other);
        let left_cols: Vec<usize> = shared.iter().map(|&v| self.col_of(v).unwrap()).collect();
        let right_cols: Vec<usize> = shared.iter().map(|&v| other.col_of(v).unwrap()).collect();
        let (vars, extra_cols) = self.join_schema(other);

        // Build on the smaller side to keep the hash table small.
        let mut table: HashMap<Vec<Val>, Vec<&Vec<Val>>> = HashMap::new();
        for row in &other.rows {
            table.entry(Self::key(row, &right_cols)).or_default().push(row);
        }
        let mut rows = Vec::new();
        for lrow in &self.rows {
            if let Some(matches) = table.get(&Self::key(lrow, &left_cols)) {
                for rrow in matches {
                    let mut out = lrow.clone();
                    out.extend(extra_cols.iter().map(|&c| rrow[c]));
                    rows.push(out);
                }
            }
        }
        Intermediate { vars, rows }
    }

    /// Sort-merge join with `other` on all shared variables.
    pub fn sort_merge_join(&self, other: &Intermediate) -> Intermediate {
        let shared = self.shared_vars(other);
        if shared.is_empty() {
            // Degenerate to the hash join's cartesian handling.
            return self.hash_join(other);
        }
        let left_cols: Vec<usize> = shared.iter().map(|&v| self.col_of(v).unwrap()).collect();
        let right_cols: Vec<usize> = shared.iter().map(|&v| other.col_of(v).unwrap()).collect();
        let (vars, extra_cols) = self.join_schema(other);

        let mut left: Vec<&Vec<Val>> = self.rows.iter().collect();
        let mut right: Vec<&Vec<Val>> = other.rows.iter().collect();
        left.sort_by_key(|r| Self::key(r, &left_cols));
        right.sort_by_key(|r| Self::key(r, &right_cols));

        let mut rows = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() && j < right.len() {
            let lk = Self::key(left[i], &left_cols);
            let rk = Self::key(right[j], &right_cols);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Find the run of equal keys on both sides and emit the product.
                    let i_end = (i..left.len())
                        .find(|&x| Self::key(left[x], &left_cols) != lk)
                        .unwrap_or(left.len());
                    let j_end = (j..right.len())
                        .find(|&x| Self::key(right[x], &right_cols) != rk)
                        .unwrap_or(right.len());
                    for lrow in &left[i..i_end] {
                        for rrow in &right[j..j_end] {
                            let mut out = (*lrow).clone();
                            out.extend(extra_cols.iter().map(|&c| rrow[c]));
                            rows.push(out);
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        Intermediate { vars, rows }
    }

    /// Keeps only rows satisfying `binding[x] < binding[y]` for each applicable
    /// filter (both variables must be present in the schema).
    pub fn apply_filters(&mut self, filters: &[(VarId, VarId)]) {
        let applicable: Vec<(usize, usize)> =
            filters.iter().filter_map(|&(x, y)| Some((self.col_of(x)?, self.col_of(y)?))).collect();
        if applicable.is_empty() {
            return;
        }
        self.rows.retain(|r| applicable.iter().all(|&(cx, cy)| r[cx] < r[cy]));
    }

    /// Number of distinct values in the column of `var` (used by the optimizer's
    /// cardinality estimates).
    pub fn distinct_count(&self, var: VarId) -> usize {
        let Some(col) = self.col_of(var) else { return 0 };
        let mut values: Vec<Val> = self.rows.iter().map(|r| r[col]).collect();
        values.sort_unstable();
        values.dedup();
        values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vars: &[VarId], rows: &[&[Val]]) -> Intermediate {
        Intermediate { vars: vars.to_vec(), rows: rows.iter().map(|r| r.to_vec()).collect() }
    }

    #[test]
    fn hash_join_on_one_shared_variable() {
        let left = r(&[0, 1], &[&[1, 2], &[2, 3], &[4, 5]]);
        let right = r(&[1, 2], &[&[2, 7], &[3, 8], &[3, 9]]);
        let out = left.hash_join(&right);
        assert_eq!(out.vars, vec![0, 1, 2]);
        let mut rows = out.rows.clone();
        rows.sort();
        assert_eq!(rows, vec![vec![1, 2, 7], vec![2, 3, 8], vec![2, 3, 9]]);
    }

    #[test]
    fn sort_merge_join_agrees_with_hash_join() {
        let left = r(&[0, 1], &[&[1, 2], &[2, 3], &[4, 5], &[6, 3]]);
        let right = r(&[1, 2], &[&[2, 7], &[3, 8], &[3, 9], &[5, 1]]);
        let mut h = left.hash_join(&right).rows;
        let mut s = left.sort_merge_join(&right).rows;
        h.sort();
        s.sort();
        assert_eq!(h, s);
        // (1,2)x(2,7), (2,3)x(3,8),(3,9), (6,3)x(3,8),(3,9), (4,5)x(5,1).
        assert_eq!(h.len(), 6);
    }

    #[test]
    fn join_on_two_shared_variables() {
        let left = r(&[0, 1], &[&[1, 2], &[3, 4]]);
        let right = r(&[0, 1, 2], &[&[1, 2, 9], &[1, 5, 8], &[3, 4, 7]]);
        let out = left.hash_join(&right);
        assert_eq!(out.vars, vec![0, 1, 2]);
        let mut rows = out.rows;
        rows.sort();
        assert_eq!(rows, vec![vec![1, 2, 9], vec![3, 4, 7]]);
    }

    #[test]
    fn join_without_shared_variables_is_a_cross_product() {
        let left = r(&[0], &[&[1], &[2]]);
        let right = r(&[1], &[&[7], &[8]]);
        let out = left.hash_join(&right);
        assert_eq!(out.len(), 4);
        let smj = left.sort_merge_join(&right);
        assert_eq!(smj.len(), 4);
    }

    #[test]
    fn streamed_joins_agree_with_materialised_joins() {
        let left = r(&[0, 1], &[&[1, 2], &[2, 3], &[4, 5], &[6, 3]]);
        let right = r(&[1, 2], &[&[2, 7], &[3, 8], &[3, 9], &[5, 1]]);
        let materialised = left.hash_join(&right);
        assert_eq!(left.joined_vars(&right), materialised.vars);
        for merge in [false, true] {
            let mut rows = Vec::new();
            let mut collect = |row: &[Val]| {
                rows.push(row.to_vec());
                ControlFlow::Continue(())
            };
            let emitted = if merge {
                left.sort_merge_join_streamed(&right, &mut collect)
            } else {
                left.hash_join_streamed(&right, &mut collect)
            };
            assert_eq!(emitted, materialised.len() as u64);
            rows.sort();
            let mut expected = materialised.rows.clone();
            expected.sort();
            assert_eq!(rows, expected, "merge={merge}");
        }
        // Early termination stops the scan.
        let mut seen = 0;
        let emitted = left.hash_join_streamed(&right, &mut |_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!((seen, emitted), (1, 1));
        // The cartesian case streams too.
        let a = r(&[0], &[&[1], &[2]]);
        let b = r(&[1], &[&[7]]);
        let mut n = 0;
        a.sort_merge_join_streamed(&b, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 2);
    }

    #[test]
    fn filters_prune_rows_once_both_sides_are_present() {
        let mut inter = r(&[0, 1], &[&[1, 2], &[3, 2], &[2, 2]]);
        inter.apply_filters(&[(0, 1), (2, 3)]); // the second filter is not applicable
        assert_eq!(inter.rows, vec![vec![1, 2]]);
    }

    #[test]
    fn distinct_counts_per_column() {
        let inter = r(&[0, 1], &[&[1, 2], &[1, 3], &[2, 3]]);
        assert_eq!(inter.distinct_count(0), 2);
        assert_eq!(inter.distinct_count(1), 2);
        assert_eq!(inter.distinct_count(9), 0);
    }

    #[test]
    fn from_relation_preserves_rows() {
        let rel = Relation::from_pairs(vec![(1, 2), (3, 4)]);
        let inter = Intermediate::from_relation(&rel, &[5, 7]);
        assert_eq!(inter.vars, vec![5, 7]);
        assert_eq!(inter.len(), 2);
    }
}
