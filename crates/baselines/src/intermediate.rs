//! Columnar intermediate results and the pairwise physical join operators.
//!
//! A Selinger-style engine evaluates a join query as a sequence of two-way joins,
//! materialising each intermediate result. [`Intermediate`] is that materialised
//! table, stored the same way [`Relation`] stores base data: **one contiguous
//! row-major buffer** of `len × arity` values. There is no per-row allocation
//! anywhere in the pairwise path — rows are zero-copy `&[Val]` slices
//! ([`Intermediate::row`]), join output is written straight into the output
//! buffer, and every reordering (the sort side of a sort-merge join) happens
//! through a row-*index* permutation over the flat buffer
//! ([`Intermediate::sort_perm`], mirroring `Relation::sorted_row_order`).
//!
//! # Buffer invariants
//!
//! * `buf.len() == len() * width()` with `width() == vars().len()`; row `i`
//!   occupies `buf[i * width .. (i + 1) * width]`.
//! * The schema ([`Intermediate::vars`]) never repeats a variable, and joins never
//!   drop columns — the output schema is the left schema followed by the right
//!   side's non-shared columns ([`Intermediate::joined_vars`]).
//! * Rows are **not** kept sorted (unlike `Relation`): the row order is the
//!   deterministic emission order of the operator that produced them, which the
//!   parallel pairwise runtime relies on (see below).
//! * Sorting for the merge join never rearranges the buffer: it produces a `u32`
//!   row-index permutation ordered by the key columns (ties broken by row index,
//!   i.e. a stable sort), and consumers read `row(perm[k])`.
//!
//! Two physical join implementations are provided — [`Intermediate::hash_join`]
//! (row-store stand-in; a chained hash table of row indices, no per-key bucket
//! allocations) and [`Intermediate::sort_merge_join`] (column-store stand-in; both
//! sides sorted by index permutation, runs aligned by a linear merge) — along with
//! streamed variants that pipeline each joined row into a caller sink, and the
//! selection/filter operators the executor needs.
//!
//! # Emission order
//!
//! Both joins emit (and materialise) output **in left-row order**: for each left
//! row in stored order, its right-side matches in a deterministic order (right
//! stored order for the hash join, right key-sorted order for the merge join).
//! Left-order emission is what makes the parallel pairwise path exact: the plan's
//! base relation is sorted, so restricting it to consecutive first-attribute
//! ranges (morsels) and concatenating the per-range outputs in range order
//! reproduces the serial emission stream byte for byte. The sort-merge join still
//! *computes* through sorted runs (both sides are key-sorted and merged — the
//! column-store cost profile is unchanged); only its emission is re-ordered to the
//! left probe order via a per-left-row run table.

use gj_query::VarId;
use gj_storage::{Relation, Val};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::ControlFlow;

/// Sentinel for "no next row" in [`RightIndex::Hash`] chains.
const NO_ROW: u32 = u32::MAX;

/// A materialised intermediate relation over query variables, stored as one flat
/// `len × arity` row-major buffer (see the [module docs](self) for the layout
/// invariants).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Intermediate {
    /// The variables of each column (never repeats a variable).
    vars: Vec<VarId>,
    /// Row width; equals `vars.len()` (cached to keep the hot loops free of
    /// `vars` reads).
    width: usize,
    /// Row-major flat buffer of `len * width` values.
    buf: Vec<Val>,
}

impl Intermediate {
    /// An empty intermediate with the given schema.
    pub fn empty(vars: Vec<VarId>) -> Self {
        let width = vars.len();
        Intermediate { vars, width, buf: Vec::new() }
    }

    /// Builds an intermediate from a base relation and the variables of its atom:
    /// one `memcpy` of the relation's flat buffer, no per-row work. Atoms never
    /// repeat a variable (checked by the query validator).
    pub fn from_relation(relation: &Relation, vars: &[VarId]) -> Self {
        assert_eq!(vars.len(), relation.arity(), "one variable per relation column");
        Intermediate {
            vars: vars.to_vec(),
            width: vars.len(),
            buf: relation.flat_values().to_vec(),
        }
    }

    /// Resets the schema and drops all rows, keeping the buffer capacity — the
    /// reuse primitive for per-worker intermediates carried across morsels.
    pub fn reset(&mut self, vars: &[VarId]) {
        self.vars.clear();
        self.vars.extend_from_slice(vars);
        self.width = vars.len();
        self.buf.clear();
    }

    /// The row-index bounds `[start, end)` of the rows whose **first column**
    /// value lies in `[lo, hi)`. The rows must be sorted on their first column
    /// (base relations are — `Relation` stores rows in lexicographic order), so
    /// this is a pair of binary searches. Exposed separately from
    /// [`load_first_col_range`](Self::load_first_col_range) so callers can check
    /// a row budget against the restriction's size *before* paying the copy.
    pub fn first_col_range(&self, lo: Val, hi: Val) -> (usize, usize) {
        if self.is_empty() {
            return (0, 0);
        }
        let first = |i: usize| self.row(i)[0];
        debug_assert!((1..self.len()).all(|i| first(i - 1) <= first(i)));
        let start = partition_rows(self.len(), |i| first(i) < lo);
        let end = partition_rows(self.len(), |i| first(i) < hi);
        (start, end)
    }

    /// Replaces the contents with the rows of `source` whose **first column**
    /// value lies in `[lo, hi)` (see [`first_col_range`](Self::first_col_range)):
    /// a binary search plus one `memcpy`.
    pub fn load_first_col_range(&mut self, source: &Intermediate, lo: Val, hi: Val) {
        let (start, end) = source.first_col_range(lo, hi);
        self.load_row_range(source, start, end);
    }

    /// Replaces the contents with rows `start..end` of `source` — one `memcpy`,
    /// reusing this buffer's capacity.
    pub fn load_row_range(&mut self, source: &Intermediate, start: usize, end: usize) {
        self.reset(&source.vars);
        self.buf.extend_from_slice(&source.buf[start * source.width..end * source.width]);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.buf.len().checked_div(self.width).unwrap_or(0)
    }

    /// Whether the intermediate is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The variables of each column.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Row `i` as a zero-copy slice into the flat buffer.
    #[inline]
    pub fn row(&self, i: usize) -> &[Val] {
        &self.buf[i * self.width..(i + 1) * self.width]
    }

    /// Iterates over the rows as zero-copy slices.
    pub fn rows(&self) -> impl Iterator<Item = &[Val]> {
        self.buf.chunks_exact(self.width.max(1))
    }

    /// The flat row-major buffer (`len() * vars().len()` values).
    pub fn flat_values(&self) -> &[Val] {
        &self.buf
    }

    /// Appends one row (must match the schema width).
    pub fn push_row(&mut self, row: &[Val]) {
        debug_assert_eq!(row.len(), self.width);
        self.buf.extend_from_slice(row);
    }

    /// The column index of `var`, if present.
    pub fn col_of(&self, var: VarId) -> Option<usize> {
        self.vars.iter().position(|&v| v == var)
    }

    /// The variables shared with another intermediate.
    pub fn shared_vars(&self, other: &Intermediate) -> Vec<VarId> {
        self.vars.iter().copied().filter(|v| other.col_of(*v).is_some()).collect()
    }

    /// The output schema of joining `self` with `other` (self's variables followed
    /// by other's non-shared ones) — the row shape both joins emit.
    pub fn joined_vars(&self, other: &Intermediate) -> Vec<VarId> {
        JoinCols::resolve(&self.vars, &other.vars).1
    }

    /// The row-index permutation that orders the rows by the given key columns,
    /// ties broken by row index (a stable key sort). Sorting never touches the
    /// buffer — consumers read `row(perm[k])`.
    pub fn sort_perm(&self, key_cols: &[usize]) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        if key_cols.is_empty() {
            return order;
        }
        order.sort_unstable_by(|&a, &b| {
            self.cmp_keys(a as usize, self, b as usize, key_cols, key_cols).then(a.cmp(&b))
        });
        order
    }

    /// Compares the key of `self.row(i)` (under `self_cols`) with the key of
    /// `other.row(j)` (under `other_cols`).
    #[inline]
    fn cmp_keys(
        &self,
        i: usize,
        other: &Intermediate,
        j: usize,
        self_cols: &[usize],
        other_cols: &[usize],
    ) -> std::cmp::Ordering {
        let (a, b) = (self.row(i), other.row(j));
        for (&ca, &cb) in self_cols.iter().zip(other_cols) {
            match a[ca].cmp(&b[cb]) {
                std::cmp::Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Streams the join of `self` (left side) with `right` through a prebuilt
    /// [`RightIndex`], emitting each joined row — left row followed by the right
    /// side's extra columns, in **left-row order** — into one scratch buffer passed
    /// to `emit`; the scan stops as soon as `emit` breaks. Returns the number of
    /// rows emitted.
    ///
    /// This is the shared core of both physical joins: the operator (hash probe vs
    /// merge of sorted runs) is picked by the index variant. Per call it allocates
    /// only the scratch row and, for the merge join, the left permutation and run
    /// table — never anything per output row. Callers that execute the same join
    /// repeatedly (the per-worker morsel path) should use
    /// [`stream_join_with`](Self::stream_join_with) and cache the left
    /// permutation.
    pub fn stream_join(
        &self,
        right: &Intermediate,
        cols: &JoinCols,
        index: &RightIndex,
        emit: &mut impl FnMut(&[Val]) -> ControlFlow<()>,
    ) -> u64 {
        self.stream_join_with(right, cols, index, None, emit)
    }

    /// [`stream_join`](Self::stream_join) with an optional precomputed **left**
    /// sort permutation for the merge join (`self.sort_perm(&cols.left)`; ignored
    /// by the hash join). The left sort is the only per-execution build of a
    /// prepared merge-join step — the right side's permutation lives in the
    /// prepared [`RightIndex`] — so workers that run the same join over the same
    /// left rows repeatedly (same morsel, repeated executions) cache it and skip
    /// the `O(n log n)` sort. The permutation must be exactly
    /// `self.sort_perm(&cols.left)`; a permutation of the wrong length panics in
    /// debug builds and must not be passed in release ones.
    pub fn stream_join_with(
        &self,
        right: &Intermediate,
        cols: &JoinCols,
        index: &RightIndex,
        left_perm: Option<&[u32]>,
        emit: &mut impl FnMut(&[Val]) -> ControlFlow<()>,
    ) -> u64 {
        let mut out = vec![0; self.width + cols.extra.len()];
        let mut emitted = 0u64;
        let mut send = |left_row: &[Val], right_row: &[Val]| {
            out[..left_row.len()].copy_from_slice(left_row);
            for (slot, &c) in out[left_row.len()..].iter_mut().zip(&cols.extra) {
                *slot = right_row[c];
            }
            emitted += 1;
            emit(&out)
        };
        match index {
            RightIndex::Hash { heads, next } => {
                'rows: for i in 0..self.len() {
                    let lrow = self.row(i);
                    let h = hash_key(lrow, &cols.left);
                    let Some(&head) = heads.get(&h) else { continue };
                    let mut j = head;
                    while j != NO_ROW {
                        if self.cmp_keys(i, right, j as usize, &cols.left, &cols.right).is_eq()
                            && send(lrow, right.row(j as usize)).is_break()
                        {
                            break 'rows;
                        }
                        j = next[j as usize];
                    }
                }
            }
            RightIndex::Sorted { order } => {
                // Sort-merge: sort the left by the key columns too (or take the
                // caller's cached permutation), align the equal-key runs of both
                // sorted sides with one linear merge, then emit in left *stored*
                // order through the per-left-row run table.
                let lperm: std::borrow::Cow<'_, [u32]> = match left_perm {
                    Some(perm) => {
                        debug_assert_eq!(perm.len(), self.len(), "stale left permutation");
                        std::borrow::Cow::Borrowed(perm)
                    }
                    None => std::borrow::Cow::Owned(self.sort_perm(&cols.left)),
                };
                let mut runs = vec![(0u32, 0u32); self.len()];
                let (mut i, mut j) = (0usize, 0usize);
                while i < lperm.len() && j < order.len() {
                    let (li, rj) = (lperm[i] as usize, order[j] as usize);
                    match self.cmp_keys(li, right, rj, &cols.left, &cols.right) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let i_end = (i..lperm.len())
                                .find(|&x| {
                                    self.cmp_keys(
                                        lperm[x] as usize,
                                        self,
                                        li,
                                        &cols.left,
                                        &cols.left,
                                    )
                                    .is_ne()
                                })
                                .unwrap_or(lperm.len());
                            let j_end = (j..order.len())
                                .find(|&x| {
                                    right
                                        .cmp_keys(
                                            order[x] as usize,
                                            right,
                                            rj,
                                            &cols.right,
                                            &cols.right,
                                        )
                                        .is_ne()
                                })
                                .unwrap_or(order.len());
                            for &l in &lperm[i..i_end] {
                                runs[l as usize] = (j as u32, j_end as u32);
                            }
                            i = i_end;
                            j = j_end;
                        }
                    }
                }
                'rows: for (li, &(rs, re)) in runs.iter().enumerate() {
                    for &rj in &order[rs as usize..re as usize] {
                        if send(self.row(li), right.row(rj as usize)).is_break() {
                            break 'rows;
                        }
                    }
                }
            }
        }
        emitted
    }

    /// Materialises the join of `self` with `right` into `out`, reusing `out`'s
    /// buffer capacity: the joined rows are written straight into the output
    /// buffer in emission order, with no per-row allocation.
    pub fn join_into(
        &self,
        right: &Intermediate,
        cols: &JoinCols,
        index: &RightIndex,
        out_vars: &[VarId],
        out: &mut Intermediate,
    ) {
        out.reset(out_vars);
        let buf = &mut out.buf;
        self.stream_join(right, cols, index, &mut |row| {
            buf.extend_from_slice(row);
            ControlFlow::Continue(())
        });
    }

    /// Hash join with `other` on all shared variables (cartesian product when
    /// there are none, as a pairwise plan occasionally requires). Convenience
    /// wrapper building the [`RightIndex`] on the fly; the executor precomputes
    /// the index once per plan step instead.
    pub fn hash_join(&self, other: &Intermediate) -> Intermediate {
        let (cols, out_vars) = JoinCols::resolve(&self.vars, &other.vars);
        let index = RightIndex::hash(other, &cols.right);
        let mut out = Intermediate::default();
        self.join_into(other, &cols, &index, &out_vars, &mut out);
        out
    }

    /// Sort-merge join with `other` on all shared variables (cartesian product
    /// when there are none: the empty key makes both sides one equal-key run).
    pub fn sort_merge_join(&self, other: &Intermediate) -> Intermediate {
        let (cols, out_vars) = JoinCols::resolve(&self.vars, &other.vars);
        let index = RightIndex::sorted(other, &cols.right);
        let mut out = Intermediate::default();
        self.join_into(other, &cols, &index, &out_vars, &mut out);
        out
    }

    /// Streams the hash join with `other` instead of materialising it (see
    /// [`stream_join`](Self::stream_join)). Returns the number of rows emitted.
    pub fn hash_join_streamed(
        &self,
        other: &Intermediate,
        emit: &mut impl FnMut(&[Val]) -> ControlFlow<()>,
    ) -> u64 {
        let (cols, _) = JoinCols::resolve(&self.vars, &other.vars);
        let index = RightIndex::hash(other, &cols.right);
        self.stream_join(other, &cols, &index, emit)
    }

    /// Streams the sort-merge join with `other` (see
    /// [`stream_join`](Self::stream_join)). Returns the number of rows emitted.
    pub fn sort_merge_join_streamed(
        &self,
        other: &Intermediate,
        emit: &mut impl FnMut(&[Val]) -> ControlFlow<()>,
    ) -> u64 {
        let (cols, _) = JoinCols::resolve(&self.vars, &other.vars);
        let index = RightIndex::sorted(other, &cols.right);
        self.stream_join(other, &cols, &index, emit)
    }

    /// Keeps only rows satisfying `binding[x] < binding[y]` for each applicable
    /// filter (both variables must be present in the schema). Compacts the flat
    /// buffer in place — surviving rows slide forward, nothing is reallocated.
    pub fn apply_filters(&mut self, filters: &[(VarId, VarId)]) {
        let applicable: Vec<(usize, usize)> =
            filters.iter().filter_map(|&(x, y)| Some((self.col_of(x)?, self.col_of(y)?))).collect();
        if applicable.is_empty() {
            return;
        }
        let (len, w) = (self.len(), self.width);
        let mut kept = 0usize;
        for i in 0..len {
            let r = &self.buf[i * w..(i + 1) * w];
            if applicable.iter().all(|&(cx, cy)| r[cx] < r[cy]) {
                if kept != i {
                    self.buf.copy_within(i * w..(i + 1) * w, kept * w);
                }
                kept += 1;
            }
        }
        self.buf.truncate(kept * w);
    }

    /// Number of distinct values in the column of `var` (used by the optimizer's
    /// cardinality estimates).
    pub fn distinct_count(&self, var: VarId) -> usize {
        let Some(col) = self.col_of(var) else { return 0 };
        let mut values: Vec<Val> = (0..self.len()).map(|i| self.row(i)[col]).collect();
        values.sort_unstable();
        values.dedup();
        values.len()
    }

    /// The distinct values of the first column, in increasing order — the morsel
    /// partition axis for the parallel pairwise path. Requires the rows to be
    /// sorted on the first column (base relations are).
    pub fn distinct_first_values(&self) -> Vec<Val> {
        let mut values: Vec<Val> = (0..self.len()).map(|i| self.row(i)[0]).collect();
        values.dedup();
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "first column must be sorted");
        values
    }
}

/// `partition_point` over row indices `0..len`.
fn partition_rows(len: usize, mut pred: impl FnMut(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Hash of a row's key columns (the probe key of the chained hash join).
#[inline]
fn hash_key(row: &[Val], cols: &[usize]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &c in cols {
        row[c].hash(&mut h);
    }
    h.finish()
}

/// The column bookkeeping of one pairwise join, resolved once per plan step: which
/// left/right columns form the equi-join key and which right columns are appended
/// to the output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinCols {
    /// Left-side key column indices (one per shared variable).
    pub left: Vec<usize>,
    /// Right-side key column indices, aligned with `left`.
    pub right: Vec<usize>,
    /// Right-side columns appended after the left row in the output.
    pub extra: Vec<usize>,
}

impl JoinCols {
    /// Resolves the join columns and the output schema for `left_vars ⋈
    /// right_vars`: the shared variables form the key, the output is the left
    /// schema followed by the right side's non-shared columns.
    pub fn resolve(left_vars: &[VarId], right_vars: &[VarId]) -> (JoinCols, Vec<VarId>) {
        let mut cols = JoinCols { left: Vec::new(), right: Vec::new(), extra: Vec::new() };
        let mut out_vars = left_vars.to_vec();
        for (rc, &v) in right_vars.iter().enumerate() {
            match left_vars.iter().position(|&l| l == v) {
                Some(lc) => {
                    cols.left.push(lc);
                    cols.right.push(rc);
                }
                None => {
                    cols.extra.push(rc);
                    out_vars.push(v);
                }
            }
        }
        (cols, out_vars)
    }
}

/// A precomputed probe structure over the **right** (build) side of one pairwise
/// join. Built once per plan step at prepare time and shared read-only by every
/// worker; both variants store only row indices into the right intermediate's
/// flat buffer.
#[derive(Debug, Clone)]
pub enum RightIndex {
    /// Chained hash table for the hash join: `heads` maps a key hash to the first
    /// right row with that hash, `next[i]` chains to the next one (row order is
    /// ascending, so matches are emitted in right stored order). Hash collisions
    /// are resolved by comparing the actual key columns at probe time.
    Hash {
        /// Key hash → first right row index of the chain.
        heads: HashMap<u64, u32>,
        /// `next[i]` = next right row with the same key hash (`u32::MAX` ends
        /// the chain).
        next: Vec<u32>,
    },
    /// Row-index permutation of the right side sorted on the key columns (ties by
    /// row index), for the merge join.
    Sorted {
        /// The key-sorted right row order.
        order: Vec<u32>,
    },
}

impl RightIndex {
    /// Builds the chained hash table over `right`'s key columns.
    pub fn hash(right: &Intermediate, key_cols: &[usize]) -> RightIndex {
        let mut heads = HashMap::new();
        let mut next = vec![NO_ROW; right.len()];
        // Insert in reverse row order so each chain head is the smallest row
        // index and chains walk in ascending (stored) order.
        for i in (0..right.len()).rev() {
            let h = hash_key(right.row(i), key_cols);
            if let Some(prev) = heads.insert(h, i as u32) {
                next[i] = prev;
            }
        }
        RightIndex::Hash { heads, next }
    }

    /// Builds the key-sorted row permutation over `right`.
    pub fn sorted(right: &Intermediate, key_cols: &[usize]) -> RightIndex {
        RightIndex::Sorted { order: right.sort_perm(key_cols) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test helper: an intermediate from a flat buffer (rows are `vars.len()`
    /// wide).
    fn r(vars: &[VarId], flat: &[Val]) -> Intermediate {
        let mut inter = Intermediate::empty(vars.to_vec());
        assert_eq!(flat.len() % vars.len(), 0);
        for row in flat.chunks_exact(vars.len()) {
            inter.push_row(row);
        }
        inter
    }

    /// Sorted row set of an intermediate, flattened (for order-insensitive
    /// comparisons).
    fn sorted_rows(inter: &Intermediate) -> Vec<Val> {
        let mut rows: Vec<&[Val]> = inter.rows().collect();
        rows.sort_unstable();
        rows.concat()
    }

    #[test]
    fn hash_join_on_one_shared_variable() {
        let left = r(&[0, 1], &[1, 2, 2, 3, 4, 5]);
        let right = r(&[1, 2], &[2, 7, 3, 8, 3, 9]);
        let out = left.hash_join(&right);
        assert_eq!(out.vars(), &[0, 1, 2]);
        assert_eq!(sorted_rows(&out), vec![1, 2, 7, 2, 3, 8, 2, 3, 9]);
    }

    #[test]
    fn sort_merge_join_agrees_with_hash_join() {
        let left = r(&[0, 1], &[1, 2, 2, 3, 4, 5, 6, 3]);
        let right = r(&[1, 2], &[2, 7, 3, 8, 3, 9, 5, 1]);
        let h = left.hash_join(&right);
        let s = left.sort_merge_join(&right);
        assert_eq!(sorted_rows(&h), sorted_rows(&s));
        // (1,2)x(2,7), (2,3)x(3,8),(3,9), (6,3)x(3,8),(3,9), (4,5)x(5,1).
        assert_eq!(h.len(), 6);
        // Both joins emit in left-row order (the parallel-exactness invariant).
        assert_eq!(h.flat_values(), s.flat_values());
        assert_eq!(h.row(0), &[1, 2, 7]);
        assert_eq!(h.row(5), &[6, 3, 9]);
    }

    #[test]
    fn join_on_two_shared_variables() {
        let left = r(&[0, 1], &[1, 2, 3, 4]);
        let right = r(&[0, 1, 2], &[1, 2, 9, 1, 5, 8, 3, 4, 7]);
        let out = left.hash_join(&right);
        assert_eq!(out.vars(), &[0, 1, 2]);
        assert_eq!(sorted_rows(&out), vec![1, 2, 9, 3, 4, 7]);
    }

    #[test]
    fn join_without_shared_variables_is_a_cross_product() {
        let left = r(&[0], &[1, 2]);
        let right = r(&[1], &[7, 8]);
        let out = left.hash_join(&right);
        assert_eq!(out.len(), 4);
        let smj = left.sort_merge_join(&right);
        assert_eq!(smj.len(), 4);
        assert_eq!(out.flat_values(), smj.flat_values());
        assert_eq!(out.flat_values(), &[1, 7, 1, 8, 2, 7, 2, 8]);
    }

    #[test]
    fn streamed_joins_agree_with_materialised_joins() {
        let left = r(&[0, 1], &[1, 2, 2, 3, 4, 5, 6, 3]);
        let right = r(&[1, 2], &[2, 7, 3, 8, 3, 9, 5, 1]);
        let materialised = left.hash_join(&right);
        assert_eq!(left.joined_vars(&right), materialised.vars());
        for merge in [false, true] {
            let mut flat = Vec::new();
            let mut collect = |row: &[Val]| {
                flat.extend_from_slice(row);
                ControlFlow::Continue(())
            };
            let emitted = if merge {
                left.sort_merge_join_streamed(&right, &mut collect)
            } else {
                left.hash_join_streamed(&right, &mut collect)
            };
            assert_eq!(emitted, materialised.len() as u64);
            // Streaming and materialising produce the identical row stream.
            assert_eq!(flat, materialised.flat_values(), "merge={merge}");
        }
        // Early termination stops the scan.
        let mut seen = 0;
        let emitted = left.hash_join_streamed(&right, &mut |_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!((seen, emitted), (1, 1));
        // The cartesian case streams too.
        let a = r(&[0], &[1, 2]);
        let b = r(&[1], &[7]);
        let mut n = 0;
        a.sort_merge_join_streamed(&b, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 2);
    }

    #[test]
    fn join_into_reuses_the_output_buffer() {
        let left = r(&[0, 1], &[1, 2, 2, 3]);
        let right = r(&[1, 2], &[2, 7, 3, 8]);
        let (cols, out_vars) = JoinCols::resolve(left.vars(), right.vars());
        let index = RightIndex::hash(&right, &cols.right);
        let mut out = Intermediate::default();
        left.join_into(&right, &cols, &index, &out_vars, &mut out);
        assert_eq!(out.flat_values(), &[1, 2, 7, 2, 3, 8]);
        let capacity = out.buf.capacity();
        let ptr = out.buf.as_ptr();
        // A second join into the same output reuses the allocation.
        left.join_into(&right, &cols, &index, &out_vars, &mut out);
        assert_eq!(out.flat_values(), &[1, 2, 7, 2, 3, 8]);
        assert_eq!(out.buf.capacity(), capacity);
        assert_eq!(out.buf.as_ptr(), ptr);
    }

    #[test]
    fn filters_prune_rows_once_both_sides_are_present() {
        let mut inter = r(&[0, 1], &[1, 2, 3, 2, 2, 2]);
        inter.apply_filters(&[(0, 1), (2, 3)]); // the second filter is not applicable
        assert_eq!(inter.flat_values(), &[1, 2]);
        assert_eq!(inter.len(), 1);
    }

    #[test]
    fn distinct_counts_per_column() {
        let inter = r(&[0, 1], &[1, 2, 1, 3, 2, 3]);
        assert_eq!(inter.distinct_count(0), 2);
        assert_eq!(inter.distinct_count(1), 2);
        assert_eq!(inter.distinct_count(9), 0);
    }

    #[test]
    fn from_relation_preserves_rows() {
        let rel = Relation::from_pairs(vec![(1, 2), (3, 4)]);
        let inter = Intermediate::from_relation(&rel, &[5, 7]);
        assert_eq!(inter.vars(), &[5, 7]);
        assert_eq!(inter.len(), 2);
        assert_eq!(inter.flat_values(), rel.flat_values());
    }

    #[test]
    fn first_col_range_restriction_is_a_contiguous_slice() {
        let rel = Relation::from_pairs(vec![(1, 2), (1, 5), (3, 4), (7, 0), (9, 9)]);
        let base = Intermediate::from_relation(&rel, &[0, 1]);
        let mut restricted = Intermediate::default();
        restricted.load_first_col_range(&base, 1, 7);
        assert_eq!(restricted.flat_values(), &[1, 2, 1, 5, 3, 4]);
        restricted.load_first_col_range(&base, 8, gj_storage::POS_INF);
        assert_eq!(restricted.flat_values(), &[9, 9]);
        restricted.load_first_col_range(&base, gj_storage::NEG_INF, gj_storage::POS_INF);
        assert_eq!(restricted.flat_values(), base.flat_values());
        // Splitting at boundaries tiles the base exactly.
        assert_eq!(base.distinct_first_values(), vec![1, 3, 7, 9]);
        let mut reassembled = Vec::new();
        for (lo, hi) in [(-1, 3), (3, 9), (9, gj_storage::POS_INF)] {
            restricted.load_first_col_range(&base, lo, hi);
            reassembled.extend_from_slice(restricted.flat_values());
        }
        assert_eq!(reassembled, base.flat_values());
    }

    #[test]
    fn sort_perm_is_stable_on_equal_keys() {
        let inter = r(&[0, 1], &[5, 1, 3, 2, 5, 0, 3, 1]);
        assert_eq!(inter.sort_perm(&[0]), vec![1, 3, 0, 2]);
        // The empty key is the identity (cartesian runs keep stored order).
        assert_eq!(inter.sort_perm(&[]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut inter = r(&[0, 1], &[1, 2, 3, 4, 5, 6]);
        let capacity = inter.buf.capacity();
        inter.reset(&[7]);
        assert_eq!(inter.vars(), &[7]);
        assert!(inter.is_empty());
        assert_eq!(inter.buf.capacity(), capacity);
    }
}
