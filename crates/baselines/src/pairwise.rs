//! The pairwise (Selinger-style) executor — PostgreSQL / MonetDB stand-ins.
//!
//! Executes the left-deep plan chosen by the [`planner`](crate::planner), joining one
//! atom at a time and materialising every intermediate **except the last**: the
//! final join is streamed row by row into the caller's sink, the way a SQL engine
//! pipelines its top operator into the client cursor. Joins run with either hash
//! joins ([`JoinAlgo::Hash`], the row-store stand-in) or sort-merge joins
//! ([`JoinAlgo::SortMerge`], the column-store stand-in). Order filters are applied as
//! soon as both of their variables are present in a materialised intermediate — the
//! same opportunity a SQL engine has — and re-checked on the streamed rows for the
//! filters that only complete at the last join.
//!
//! A configurable budget on result rows ([`ExecLimits`]) lets the benchmark
//! harness report the paper's "timeout" cells without exhausting memory: when a
//! materialised intermediate — or the streamed final join's output — exceeds the
//! budget, the execution aborts with
//! [`BaselineError::IntermediateBudgetExceeded`]. The streamed rows are never
//! materialised, but they still count against the budget so the budget keeps
//! working as the harness's time bound.

use crate::intermediate::Intermediate;
use crate::planner::plan_left_deep;
use gj_query::{Instance, Query};
use std::ops::ControlFlow;

/// Which physical pairwise join operator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Build/probe hash join (row-store / PostgreSQL stand-in).
    Hash,
    /// Sort-merge join (column-store / MonetDB stand-in).
    SortMerge,
}

/// Resource limits for a pairwise execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum number of rows any single materialised intermediate — or the
    /// streamed final join's output — may reach.
    pub max_intermediate_rows: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits { max_intermediate_rows: 50_000_000 }
    }
}

/// Errors from the pairwise executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// A referenced relation is missing from the instance.
    MissingRelation(String),
    /// An intermediate grew past the configured budget (reported as a timeout in the
    /// harness, mirroring the paper's "-" cells).
    IntermediateBudgetExceeded { rows: usize, budget: usize },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::MissingRelation(name) => write!(f, "relation {name} not found"),
            BaselineError::IntermediateBudgetExceeded { rows, budget } => {
                write!(f, "intermediate result of {rows} rows exceeded the budget of {budget}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// Statistics of a pairwise execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairwiseStats {
    /// Total rows materialised across all intermediates. The final join is streamed
    /// (never materialised), so its output is not counted here.
    pub materialized_rows: u64,
    /// Size of the largest materialised intermediate.
    pub peak_intermediate: u64,
}

/// Counts the output of `query` over `instance` with the pairwise engine.
pub fn pairwise_count(
    instance: &Instance,
    query: &Query,
    algo: JoinAlgo,
    limits: &ExecLimits,
) -> Result<u64, BaselineError> {
    pairwise_count_with_stats(instance, query, algo, limits).map(|(count, _)| count)
}

/// Counts the output and also reports materialisation statistics. The final join
/// is streamed into a counter, so the count never materialises the full result.
pub fn pairwise_count_with_stats(
    instance: &Instance,
    query: &Query,
    algo: JoinAlgo,
    limits: &ExecLimits,
) -> Result<(u64, PairwiseStats), BaselineError> {
    pairwise_run(instance, query, algo, limits, &mut |_| ControlFlow::Continue(()))
}

/// Runs the pairwise plan, streaming the final join's rows — re-ordered into
/// **variable-id order** — directly into `emit`; emission stops as soon as `emit`
/// returns [`ControlFlow::Break`]. Returns the number of rows emitted and the
/// materialisation statistics.
///
/// Every intermediate *except the last* is materialised (that is the pairwise
/// engine's defining limitation — a worst-case optimal engine materialises
/// nothing), but the final join pipelines into the sink: no last `Intermediate` is
/// ever built, so early termination also skips the tail of the final probe/merge
/// scan. Rows arrive in the deterministic order of the streamed join (left rows in
/// plan order for hash joins, join-key order for sort-merge) rather than sorted;
/// `Database::enumerate` sorts when a canonical order is needed.
///
/// The streamed output still counts against
/// [`ExecLimits::max_intermediate_rows`]: a final join whose output overruns the
/// budget aborts with [`BaselineError::IntermediateBudgetExceeded`], exactly as it
/// did when the final intermediate was materialised (the budget is the benchmark
/// harness's stand-in for the paper's timeouts).
pub fn pairwise_run(
    instance: &Instance,
    query: &Query,
    algo: JoinAlgo,
    limits: &ExecLimits,
    emit: &mut impl FnMut(&[gj_storage::Val]) -> ControlFlow<()>,
) -> Result<(u64, PairwiseStats), BaselineError> {
    let relations: Vec<&gj_storage::Relation> = query
        .atoms
        .iter()
        .map(|a| {
            instance
                .relation(&a.relation)
                .ok_or_else(|| BaselineError::MissingRelation(a.relation.clone()))
        })
        .collect::<Result<_, _>>()?;

    let plan = plan_left_deep(query, &relations);
    let mut stats = PairwiseStats::default();

    let first = plan.order[0];
    let mut current = Intermediate::from_relation(relations[first], &query.atoms[first].vars);
    current.apply_filters(&query.filters);
    track(&mut stats, &current, limits)?;

    // Materialise every join but the last.
    for &idx in &plan.order[1..plan.order.len().saturating_sub(1)] {
        let right = Intermediate::from_relation(relations[idx], &query.atoms[idx].vars);
        current = match algo {
            JoinAlgo::Hash => current.hash_join(&right),
            JoinAlgo::SortMerge => current.sort_merge_join(&right),
        };
        current.apply_filters(&query.filters);
        track(&mut stats, &current, limits)?;
    }

    // Stream the final join (or, for a single-atom plan, the filtered relation
    // itself) straight into the sink: project each joined row to variable-id order,
    // re-check the order filters (the ones whose variables only meet at this join
    // have not been applied yet), and emit.
    let (schema, right) = if plan.order.len() == 1 {
        (current.vars.clone(), None)
    } else {
        let last = plan.order[plan.order.len() - 1];
        let right = Intermediate::from_relation(relations[last], &query.atoms[last].vars);
        (current.joined_vars(&right), right.into())
    };
    let cols: Vec<usize> = (0..query.num_vars())
        .map(|v| {
            schema
                .iter()
                .position(|&s| s == v)
                .expect("the final join's schema covers every query variable")
        })
        .collect();
    let mut scratch = vec![0; cols.len()];
    let mut emitted = 0u64;
    let mut overrun = false;
    let budget = limits.max_intermediate_rows;
    let mut stream = |row: &[gj_storage::Val]| {
        for (slot, &c) in scratch.iter_mut().zip(&cols) {
            *slot = row[c];
        }
        if !query.filters_satisfied(&scratch) {
            return ControlFlow::Continue(());
        }
        if emitted as usize >= budget {
            overrun = true;
            return ControlFlow::Break(());
        }
        emitted += 1;
        emit(&scratch)
    };
    match right {
        None => {
            for row in &current.rows {
                if stream(row).is_break() {
                    break;
                }
            }
        }
        Some(right) => match algo {
            JoinAlgo::Hash => {
                current.hash_join_streamed(&right, &mut stream);
            }
            JoinAlgo::SortMerge => {
                current.sort_merge_join_streamed(&right, &mut stream);
            }
        },
    }
    if overrun {
        return Err(BaselineError::IntermediateBudgetExceeded {
            rows: emitted as usize + 1,
            budget,
        });
    }
    Ok((emitted, stats))
}

fn track(
    stats: &mut PairwiseStats,
    intermediate: &Intermediate,
    limits: &ExecLimits,
) -> Result<(), BaselineError> {
    let rows = intermediate.len();
    stats.materialized_rows += rows as u64;
    stats.peak_intermediate = stats.peak_intermediate.max(rows as u64);
    if rows > limits.max_intermediate_rows {
        return Err(BaselineError::IntermediateBudgetExceeded {
            rows,
            budget: limits.max_intermediate_rows,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{naive_count, CatalogQuery};
    use gj_storage::{Graph, Relation};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_instance(seed: u64, n: u32, p: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|_| rng.gen_bool(p))
            .collect();
        let g = Graph::new_undirected(n as usize, edges);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst.add_relation("v1", Relation::from_values((0..n as i64).step_by(3)));
        inst.add_relation("v2", Relation::from_values((0..n as i64).step_by(2)));
        inst.add_relation("v3", Relation::from_values((0..n as i64).step_by(5)));
        inst.add_relation("v4", Relation::from_values((1..n as i64).step_by(4)));
        inst
    }

    #[test]
    fn both_algorithms_match_the_naive_count_on_all_catalog_queries() {
        let inst = random_instance(31, 22, 0.2);
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let expected = naive_count(&inst, &q);
            for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
                let got = pairwise_count(&inst, &q, algo, &ExecLimits::default()).unwrap();
                assert_eq!(got, expected, "{} with {algo:?}", q.name);
            }
        }
    }

    #[test]
    fn budget_exceeded_is_reported_for_exploding_intermediates() {
        let inst = random_instance(32, 60, 0.3);
        let q = CatalogQuery::FourClique.query();
        let limits = ExecLimits { max_intermediate_rows: 500 };
        let err = pairwise_count(&inst, &q, JoinAlgo::Hash, &limits).unwrap_err();
        assert!(matches!(err, BaselineError::IntermediateBudgetExceeded { .. }));
    }

    #[test]
    fn missing_relation_is_an_error() {
        let inst = Instance::new();
        let q = CatalogQuery::ThreeClique.query();
        let err = pairwise_count(&inst, &q, JoinAlgo::Hash, &ExecLimits::default()).unwrap_err();
        assert!(matches!(err, BaselineError::MissingRelation(_)));
    }

    #[test]
    fn stats_show_larger_intermediates_on_cyclic_queries_than_output() {
        let inst = random_instance(33, 40, 0.25);
        let q = CatalogQuery::ThreeClique.query();
        let (count, stats) =
            pairwise_count_with_stats(&inst, &q, JoinAlgo::Hash, &ExecLimits::default()).unwrap();
        // The open-wedge intermediate is much bigger than the number of triangles —
        // the effect the paper blames for the relational systems' slowness.
        assert!(
            stats.peak_intermediate > count,
            "peak {} vs count {count}",
            stats.peak_intermediate
        );
    }

    #[test]
    fn pairwise_run_streams_deterministic_rows_and_stops_on_break() {
        let inst = random_instance(34, 20, 0.25);
        let q = CatalogQuery::ThreeClique.query();
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let mut rows = Vec::new();
            let (emitted, _) = pairwise_run(&inst, &q, algo, &ExecLimits::default(), &mut |r| {
                rows.push(r.to_vec());
                ControlFlow::Continue(())
            })
            .unwrap();
            assert_eq!(emitted, rows.len() as u64, "{algo:?}");
            assert_eq!(emitted, naive_count(&inst, &q), "{algo:?}");
            // The streamed order is deterministic and duplicate-free (set semantics).
            let mut sorted = rows.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), rows.len(), "{algo:?}");
            // Early exit after two rows yields exactly the engine's first two.
            let mut prefix = Vec::new();
            let (two, _) = pairwise_run(&inst, &q, algo, &ExecLimits::default(), {
                &mut |r: &[gj_storage::Val]| {
                    prefix.push(r.to_vec());
                    if prefix.len() == 2 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                }
            })
            .unwrap();
            assert_eq!(two, 2, "{algo:?}");
            assert_eq!(prefix, rows[..2].to_vec(), "{algo:?}");
        }
    }

    #[test]
    fn streamed_final_join_still_honours_the_row_budget() {
        // The final join is streamed, never materialised — but its output still
        // counts against the budget (the harness's timeout stand-in), so a budget
        // smaller than the result aborts just as it did before streaming.
        // An open wedge over a dense graph: the only materialised intermediate is
        // the edge list itself, while the (much larger) wedge output streams.
        let inst = random_instance(35, 40, 0.3);
        let q = gj_query::QueryBuilder::new("wedge")
            .atom("edge", &["a", "b"])
            .atom("edge", &["b", "c"])
            .build();
        let (count, full_stats) =
            pairwise_count_with_stats(&inst, &q, JoinAlgo::Hash, &ExecLimits::default()).unwrap();
        assert!(
            count > full_stats.peak_intermediate,
            "the test needs a streamed output larger than every materialised step"
        );
        let tight = ExecLimits { max_intermediate_rows: count as usize - 1 };
        let err = pairwise_count_with_stats(&inst, &q, JoinAlgo::Hash, &tight).unwrap_err();
        assert!(matches!(err, BaselineError::IntermediateBudgetExceeded { .. }));
        // An exact budget succeeds with identical (materialisation-only) stats: the
        // streamed rows are bounded but never counted as materialised.
        let exact = ExecLimits { max_intermediate_rows: count as usize };
        let (ok, stats) = pairwise_count_with_stats(&inst, &q, JoinAlgo::Hash, &exact).unwrap();
        assert_eq!(ok, count);
        assert_eq!(stats, full_stats);
    }

    #[test]
    fn empty_relation_gives_zero() {
        let mut inst = Instance::new();
        inst.add_relation("edge", Relation::empty(2));
        let q = CatalogQuery::FourCycle.query();
        assert_eq!(
            pairwise_count(&inst, &q, JoinAlgo::SortMerge, &ExecLimits::default()).unwrap(),
            0
        );
    }
}
