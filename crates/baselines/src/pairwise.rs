//! The pairwise (Selinger-style) executor — PostgreSQL / MonetDB stand-ins.
//!
//! Executes the left-deep plan chosen by the [`planner`](crate::planner), joining one
//! atom at a time and materialising every intermediate **except the last**: the
//! final join is streamed row by row into the caller's sink, the way a SQL engine
//! pipelines its top operator into the client cursor. Joins run with either hash
//! joins ([`JoinAlgo::Hash`], the row-store stand-in) or sort-merge joins
//! ([`JoinAlgo::SortMerge`], the column-store stand-in). Order filters are applied
//! as soon as both of their variables are present in a materialised intermediate —
//! the same opportunity a SQL engine has — and re-checked on the streamed rows for
//! the filters that only complete at the last join.
//!
//! # Prepared plans and parallel execution
//!
//! [`PairwisePlan`] is the prepared form: planning, the copy of every atom's rows
//! into columnar [`Intermediate`]s, and the right-side probe structures
//! ([`RightIndex`] — hash tables / sort permutations, including the streamed
//! final join's) are built **once** and shared read-only by every execution and
//! every worker thread. Executions then only pay the left-deep chain itself, with
//! per-worker state ([`PairwiseWorker`]) reused across runs: the two intermediate
//! buffers the chain alternates between, plus a cache of the merge join's **left**
//! sort permutations keyed by `(step, morsel)` — the one per-execution build a
//! prepared merge-join step still had. Retired workers park in the plan's
//! [`WorkerPool`] (the runtime's `retire_worker` lifecycle hook), so buffers and
//! permutation caches survive across morsels *and* across repeated executions of
//! the same prepared query — a warm rerun pays no left sort at all.
//!
//! The plan also plugs into the `gj-runtime` morsel driver: the first join's build
//! side (the base of the left-deep chain, whose rows are sorted) is partitioned
//! into first-attribute ranges, [`PairwiseMorsels`] runs the whole chain per range
//! on each worker, and because both physical joins emit in **left-row order** (see
//! [`intermediate`](crate::intermediate)), concatenating the per-morsel outputs in
//! morsel order reproduces the serial emission stream exactly.
//!
//! # Budgets
//!
//! A configurable budget on result rows ([`ExecLimits`]) lets the benchmark
//! harness report the paper's "timeout" cells without exhausting memory: when a
//! materialised intermediate — or the streamed final join's output — exceeds the
//! budget, the execution aborts with
//! [`BaselineError::IntermediateBudgetExceeded`]. The budget is enforced **while
//! a join materialises** — each written row counts, *before* the order filters
//! prune it — so an exploding join aborts at the budget boundary instead of
//! materialising first and checking second: the budget is a genuine memory
//! bound, not just a post-hoc row count. Under parallel execution the per-worker
//! row counts aggregate into **one global budget**: each materialised step's
//! (pre-filter) rows are summed across all morsels, and because the morsels
//! partition every step's join output exactly, the per-step sums equal the
//! serial run's — a budget aborts the parallel run if and only if it aborts the
//! serial one, on any query. The streamed final-join rows aggregate the same
//! way. (One caveat: an
//! early-terminating sink — `first_k`, `exists` — stops the serial stream before
//! the budget is reached, while parallel workers may genuinely produce more rows
//! than the sink consumes before the stop propagates; the budget bounds the rows
//! *produced*, so a budget tighter than `threads × k` can abort a parallel
//! `first_k` that would succeed serially.)

use crate::intermediate::{Intermediate, JoinCols, RightIndex};
use crate::planner::plan_left_deep;
use gj_query::{Instance, Query, VarId};
use gj_runtime::{partition_values, ExecCtx, Morsel, MorselSource, WorkerPool};
use gj_storage::{Relation, Val, NEG_INF, POS_INF};
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Which physical pairwise join operator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Build/probe hash join (row-store / PostgreSQL stand-in).
    Hash,
    /// Sort-merge join (column-store / MonetDB stand-in).
    SortMerge,
}

/// Resource limits for a pairwise execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum number of rows any single materialised intermediate — or the
    /// streamed final join's output — may reach. Checked row by row while joins
    /// materialise (an overrunning join aborts at the boundary, before filters
    /// run), and applied to the **aggregate** across all workers under parallel
    /// execution (see the [module docs](self)).
    pub max_intermediate_rows: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits { max_intermediate_rows: 50_000_000 }
    }
}

/// Errors from the pairwise executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// A referenced relation is missing from the instance.
    MissingRelation(String),
    /// An intermediate grew past the configured budget (reported as a timeout in the
    /// harness, mirroring the paper's "-" cells).
    IntermediateBudgetExceeded { rows: usize, budget: usize },
    /// The left-deep plan's final schema does not cover a query variable (a
    /// variable that occurs in no atom) — rejected as a typed error rather than
    /// panicking mid-plan.
    UncoveredVariable(usize),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::MissingRelation(name) => write!(f, "relation {name} not found"),
            BaselineError::IntermediateBudgetExceeded { rows, budget } => {
                write!(f, "intermediate result of {rows} rows exceeded the budget of {budget}")
            }
            BaselineError::UncoveredVariable(v) => {
                write!(f, "query variable v{v} is not covered by any join atom")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// Statistics of a pairwise execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairwiseStats {
    /// Total rows written by the materialising joins (and the base copy), counted
    /// **before** filter pruning, summed across workers under parallel execution
    /// — the sums equal the serial run's, because morsels partition each step's
    /// join output. The final join is streamed (never materialised), so its
    /// output is not counted here.
    pub materialized_rows: u64,
    /// Rows of the largest materialised step (pre-filter; the largest per-step
    /// aggregate, under parallel execution).
    pub peak_intermediate: u64,
}

/// One prepared step of the left-deep chain: the right side's rows, the resolved
/// join columns, and the prebuilt probe structure — all shared read-only.
#[derive(Debug, Clone)]
struct JoinStep {
    right: Intermediate,
    cols: JoinCols,
    index: RightIndex,
    out_vars: Vec<VarId>,
}

/// A pairwise query prepared once: left-deep join order chosen, every atom's rows
/// copied into columnar [`Intermediate`]s, and each step's right-side probe
/// structure prebuilt. Executions ([`run`](Self::run), or the parallel driver via
/// [`PairwiseMorsels`]) share the plan immutably.
#[derive(Debug, Clone)]
pub struct PairwisePlan {
    algo: JoinAlgo,
    limits: ExecLimits,
    num_vars: usize,
    filters: Vec<(VarId, VarId)>,
    /// The first plan atom's rows (sorted — a straight copy of its relation).
    base: Intermediate,
    /// Distinct first-column values of `base`, the morsel partition axis.
    base_first: Vec<Val>,
    /// The remaining joins in plan order; all but the last materialise.
    steps: Vec<JoinStep>,
    /// Projection from the final schema to variable-id order.
    out_cols: Vec<usize>,
    /// Retired [`PairwiseWorker`]s, parked between executions. Workers carry the
    /// chain's intermediate buffers **and** the merge-join left-permutation cache,
    /// so pooling them makes both survive across morsels *and* across repeated
    /// executions of the same plan: a warm rerun skips every left sort the cold
    /// run paid for. Cloning the plan starts with an empty pool (caches do not
    /// follow clones).
    pool: WorkerPool<PairwiseWorker>,
}

impl PairwisePlan {
    /// Plans and prepares `query` over `instance` for the given join algorithm and
    /// budget: left-deep join order, row copies, and right-side probe structures
    /// are all built here, once.
    pub fn new(
        instance: &Instance,
        query: &Query,
        algo: JoinAlgo,
        limits: ExecLimits,
    ) -> Result<Self, BaselineError> {
        let relations: Vec<&Relation> = query
            .atoms
            .iter()
            .map(|a| {
                instance
                    .relation(&a.relation)
                    .ok_or_else(|| BaselineError::MissingRelation(a.relation.clone()))
            })
            .collect::<Result<_, _>>()?;

        let plan = plan_left_deep(query, &relations);
        let first = plan.order[0];
        let base = Intermediate::from_relation(relations[first], &query.atoms[first].vars);
        let base_first = base.distinct_first_values();

        let mut left_vars = base.vars().to_vec();
        let mut steps = Vec::with_capacity(plan.order.len() - 1);
        for &idx in &plan.order[1..] {
            let right = Intermediate::from_relation(relations[idx], &query.atoms[idx].vars);
            let (cols, out_vars) = JoinCols::resolve(&left_vars, right.vars());
            let index = match algo {
                JoinAlgo::Hash => RightIndex::hash(&right, &cols.right),
                JoinAlgo::SortMerge => RightIndex::sorted(&right, &cols.right),
            };
            left_vars.clone_from(&out_vars);
            steps.push(JoinStep { right, cols, index, out_vars });
        }
        let out_cols = (0..query.num_vars())
            .map(|v| {
                left_vars.iter().position(|&s| s == v).ok_or(BaselineError::UncoveredVariable(v))
            })
            .collect::<Result<_, _>>()?;
        Ok(PairwisePlan {
            algo,
            limits,
            num_vars: query.num_vars(),
            filters: query.filters.clone(),
            base,
            base_first,
            steps,
            out_cols,
            pool: WorkerPool::new(),
        })
    }

    /// The join algorithm the plan was prepared for.
    pub fn algo(&self) -> JoinAlgo {
        self.algo
    }

    /// The configured execution limits.
    pub fn limits(&self) -> &ExecLimits {
        &self.limits
    }

    /// Number of materialised intermediates (the base plus every join but the
    /// last).
    fn materialised_steps(&self) -> usize {
        1 + self.steps.len().saturating_sub(1)
    }

    /// Fresh per-worker execution state: two reusable intermediate buffers (the
    /// chain alternates between them, so one run allocates at most twice and
    /// subsequent runs not at all), the output scratch row, and an empty
    /// merge-join left-permutation cache. Prefer
    /// [`acquire_worker`](Self::acquire_worker), which recycles a pooled worker
    /// with warm caches.
    pub fn worker(&self) -> PairwiseWorker {
        PairwiseWorker {
            cur: Intermediate::default(),
            next: Intermediate::default(),
            scratch: vec![0; self.num_vars],
            perms: HashMap::new(),
        }
    }

    /// A worker from the plan's pool (warm buffers and left-permutation cache from
    /// an earlier execution), or a fresh one when the pool is empty. Pair with
    /// [`release_worker`](Self::release_worker) so the state keeps amortising.
    pub fn acquire_worker(&self) -> PairwiseWorker {
        self.pool.acquire_or(|| self.worker())
    }

    /// Parks a worker back into the plan's pool for later executions.
    pub fn release_worker(&self, worker: PairwiseWorker) {
        self.pool.release(worker);
    }

    /// Partitions the base's first attribute into at most `parts` morsels at
    /// quantiles of the values present (the same scheme the trie engines use; see
    /// `gj_runtime::partition_values`). Fewer than two morsels means the base is
    /// too small to split — callers should fall back to serial execution.
    pub fn partition(&self, parts: usize) -> Vec<Morsel> {
        partition_values(&self.base_first, parts)
    }

    /// Runs the plan serially, streaming the final join's rows — re-ordered into
    /// **variable-id order** — directly into `emit`; emission stops as soon as
    /// `emit` returns [`ControlFlow::Break`]. Returns the number of rows emitted
    /// and the materialisation statistics.
    ///
    /// Every intermediate *except the last* is materialised (that is the pairwise
    /// engine's defining limitation — a worst-case optimal engine materialises
    /// nothing), but the final join pipelines into the sink: no last
    /// [`Intermediate`] is ever built, so early termination also skips the tail of
    /// the final probe scan. Rows arrive in the deterministic left-row order of
    /// the streamed join; `Database::enumerate` sorts when a canonical order is
    /// needed.
    ///
    /// The streamed output still counts against
    /// [`ExecLimits::max_intermediate_rows`]: a final join whose output overruns
    /// the budget aborts with [`BaselineError::IntermediateBudgetExceeded`],
    /// exactly as it did when the final intermediate was materialised (the budget
    /// is the benchmark harness's stand-in for the paper's timeouts).
    pub fn run(
        &self,
        emit: &mut impl FnMut(&[Val]) -> ControlFlow<()>,
    ) -> Result<(u64, PairwiseStats), BaselineError> {
        self.run_ctx(&ExecCtx::none(), emit)
    }

    /// [`run`](Self::run) under an execution context: the materialise and stream
    /// loops poll `ctx` at the coarse check stride and stop cleanly on a trip. An
    /// aborted run returns `Ok` with a meaningless partial row count — the caller
    /// must consult the context's monitor before using the result.
    pub fn run_ctx(
        &self,
        ctx: &ExecCtx<'_>,
        emit: &mut impl FnMut(&[Val]) -> ControlFlow<()>,
    ) -> Result<(u64, PairwiseStats), BaselineError> {
        let budget = BudgetState::new(self.limits.max_intermediate_rows, self.materialised_steps());
        let mut worker = self.acquire_worker();
        let emitted = self.run_range(&mut worker, NEG_INF, POS_INF, &budget, ctx, emit);
        self.release_worker(worker);
        budget.finish().map(|stats| (emitted, stats))
    }

    /// Runs the chain with the base restricted to first-attribute values in
    /// `[lo, hi)`, tracking every row count in the (possibly shared) `budget`.
    /// Returns the number of rows emitted; a run aborted by the budget returns
    /// early and leaves the error in the budget state.
    fn run_range(
        &self,
        worker: &mut PairwiseWorker,
        lo: Val,
        hi: Val,
        budget: &BudgetState,
        ctx: &ExecCtx<'_>,
        emit: &mut dyn FnMut(&[Val]) -> ControlFlow<()>,
    ) -> u64 {
        if budget.exceeded() || ctx.should_stop() {
            return 0;
        }
        let mut watch = ctx.watch();
        let PairwiseWorker { cur, next, scratch, perms } = worker;
        // The budget is checked against the restriction's row count *before* the
        // copy is paid: an overrunning base build aborts during the build, not
        // after materialising it.
        let (start, end) = self.base.first_col_range(lo, hi);
        if budget.track_step(0, end - start).is_break() {
            return 0;
        }
        cur.load_row_range(&self.base, start, end);
        cur.apply_filters(&self.filters);

        // Materialise every join but the last, alternating between the worker's
        // two buffers. Each materialised row is counted against the budget **as it
        // is written** (not after the join completes), so an overrunning join
        // aborts at the budget boundary instead of first exhausting memory. The
        // accounting is uniformly *pre-filter*: rows later pruned by the order
        // filters stay counted, which keeps the per-step aggregates an exact
        // partition of the serial run's — a budget aborts serially if and only if
        // it aborts in parallel, on any query.
        let materialised = self.steps.len().saturating_sub(1);
        for (k, step) in self.steps[..materialised].iter().enumerate() {
            next.reset(&step.out_vars);
            let mut overrun = false;
            let mut stopped = false;
            let lperm = cached_left_perm(perms, (k, lo, hi), cur, &step.cols, &step.index);
            cur.stream_join_with(&step.right, &step.cols, &step.index, lperm, &mut |row| {
                if watch.tick() {
                    stopped = true;
                    return ControlFlow::Break(());
                }
                if budget.bump_step(k + 1).is_break() {
                    overrun = true;
                    return ControlFlow::Break(());
                }
                next.push_row(row);
                ControlFlow::Continue(())
            });
            if overrun || stopped {
                return 0;
            }
            std::mem::swap(cur, next);
            cur.apply_filters(&self.filters);
            if budget.exceeded() {
                return 0;
            }
        }

        // Stream the final join (or, for a single-atom plan, the restricted base
        // itself) straight into the sink: project each joined row to variable-id
        // order, re-check the order filters (the ones whose variables only meet at
        // this join have not been applied yet), and emit.
        let (out_cols, filters) = (&self.out_cols, &self.filters);
        let mut emitted = 0u64;
        let mut stream = |row: &[Val]| {
            if watch.tick() {
                return ControlFlow::Break(());
            }
            for (slot, &c) in scratch.iter_mut().zip(out_cols) {
                *slot = row[c];
            }
            if !filters.iter().all(|&(x, y)| scratch[x] < scratch[y]) {
                return ControlFlow::Continue(());
            }
            if budget.count_streamed().is_break() {
                return ControlFlow::Break(());
            }
            emitted += 1;
            emit(scratch)
        };
        match self.steps.last() {
            None => {
                for i in 0..cur.len() {
                    if stream(cur.row(i)).is_break() {
                        break;
                    }
                }
            }
            Some(step) => {
                let lperm =
                    cached_left_perm(perms, (materialised, lo, hi), cur, &step.cols, &step.index);
                cur.stream_join_with(&step.right, &step.cols, &step.index, lperm, &mut stream);
            }
        }
        emitted
    }
}

/// Entry cap on a worker's left-permutation cache. One partitioning produces at
/// most `threads × granularity` morsels × the plan's merge steps — comfortably
/// below this — so a fixed execution configuration never hits the cap; a
/// long-lived plan driven with *varying* thread counts produces a fresh key set
/// per partitioning, and without the cap those generations would accumulate
/// without bound (each entry is O(left rows)).
const PERM_CACHE_CAP: usize = 1024;

/// Looks up (or computes and caches) the merge-join left sort permutation for one
/// `(step, morsel)` pair. Hash-join steps need no left sort and return `None`.
///
/// The cache key is `(step index, morsel lo, morsel hi)`: the chain is
/// deterministic, so the left side of a given step over a given base restriction
/// is identical on every execution — and it is always *fully* materialised by the
/// time its join runs (a budget abort returns before reaching the join), so a
/// cached permutation can never go stale. The length check is a defensive
/// revalidation only. When a new key would push the cache past
/// [`PERM_CACHE_CAP`], the stale generations are dropped wholesale and the
/// current partitioning refills from scratch.
fn cached_left_perm<'w>(
    perms: &'w mut HashMap<(usize, Val, Val), Vec<u32>>,
    key: (usize, Val, Val),
    cur: &Intermediate,
    cols: &JoinCols,
    index: &RightIndex,
) -> Option<&'w [u32]> {
    if !matches!(index, RightIndex::Sorted { .. }) {
        return None;
    }
    if perms.len() >= PERM_CACHE_CAP && !perms.contains_key(&key) {
        perms.clear();
    }
    let perm = perms.entry(key).or_insert_with(|| cur.sort_perm(&cols.left));
    if perm.len() != cur.len() {
        *perm = cur.sort_perm(&cols.left);
    }
    Some(perm)
}

/// Per-worker execution state of a [`PairwisePlan`]: the two intermediate buffers
/// the chain alternates between (reused across every morsel the worker claims,
/// like the Minesweeper worker's executor), the projection scratch row, and the
/// merge-join left-permutation cache. Workers retired through the runtime's
/// `retire_worker` lifecycle hook park in the plan's [`WorkerPool`], so the cache
/// also survives across repeated executions of the same prepared plan.
#[derive(Debug)]
pub struct PairwiseWorker {
    cur: Intermediate,
    next: Intermediate,
    scratch: Vec<Val>,
    /// `(step, morsel lo, morsel hi)` → the step's left sort permutation (merge
    /// join only; see [`cached_left_perm`]).
    perms: HashMap<(usize, Val, Val), Vec<u32>>,
}

impl PairwiseWorker {
    /// Number of cached merge-join left sort permutations.
    pub fn cached_perms(&self) -> usize {
        self.perms.len()
    }
}

/// The shared budget/statistics ledger of one execution (serial or parallel):
/// per-materialised-step row totals, the streamed row total, and the first budget
/// violation. All counters are atomics so parallel workers aggregate into one
/// global budget.
#[derive(Debug)]
struct BudgetState {
    limit: usize,
    steps: Vec<AtomicU64>,
    streamed: AtomicU64,
    failed: AtomicBool,
    error: Mutex<Option<BaselineError>>,
}

impl BudgetState {
    fn new(limit: usize, materialised_steps: usize) -> Self {
        BudgetState {
            limit,
            steps: (0..materialised_steps).map(|_| AtomicU64::new(0)).collect(),
            streamed: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    /// Whether some worker already hit the budget (cheap cross-worker check).
    fn exceeded(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    /// Records the first budget violation (later ones are dropped).
    fn fail(&self, rows: usize) {
        if !self.failed.swap(true, Ordering::Relaxed) {
            *self.error.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                Some(BaselineError::IntermediateBudgetExceeded { rows, budget: self.limit });
        }
    }

    /// Adds one (restricted) materialised intermediate's rows to its step total;
    /// breaks when the aggregate for that step overruns the budget.
    fn track_step(&self, step: usize, rows: usize) -> ControlFlow<()> {
        let total = self.steps[step].fetch_add(rows as u64, Ordering::Relaxed) + rows as u64;
        if total as usize > self.limit {
            self.fail(total as usize);
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    }

    /// Counts one row materialised by an in-flight join against its step total —
    /// the mid-join budget check that keeps an overrunning join from exhausting
    /// memory before it is noticed.
    fn bump_step(&self, step: usize) -> ControlFlow<()> {
        self.track_step(step, 1)
    }

    /// Counts one streamed final-join row against the budget; breaks when the
    /// aggregate stream overruns it.
    fn count_streamed(&self) -> ControlFlow<()> {
        let prev = self.streamed.fetch_add(1, Ordering::Relaxed) as usize;
        if prev >= self.limit {
            self.fail(prev + 1);
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    }

    /// The aggregated statistics, or the recorded budget violation.
    fn finish(&self) -> Result<PairwiseStats, BaselineError> {
        if let Some(err) =
            self.error.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
        {
            return Err(err);
        }
        let mut stats = PairwiseStats::default();
        for step in &self.steps {
            let rows = step.load(Ordering::Relaxed);
            stats.materialized_rows += rows;
            stats.peak_intermediate = stats.peak_intermediate.max(rows);
        }
        Ok(stats)
    }
}

/// A [`PairwisePlan`] exposed to the `gj-runtime` morsel driver: each morsel runs
/// the whole left-deep chain with the base restricted to the morsel's
/// first-attribute range, on per-worker reused buffers. Left-row-ordered join
/// emission makes the morsel-order merge reproduce the serial stream exactly (see
/// the [module docs](self)).
///
/// One `PairwiseMorsels` instance is one execution: it owns the shared budget
/// ledger. After driving, [`finish`](Self::finish) returns the aggregated
/// statistics or the budget violation.
#[derive(Debug)]
pub struct PairwiseMorsels<'p> {
    plan: &'p PairwisePlan,
    budget: BudgetState,
}

impl<'p> PairwiseMorsels<'p> {
    /// Wraps a prepared plan for one morsel-driven execution.
    pub fn new(plan: &'p PairwisePlan) -> Self {
        let budget = BudgetState::new(plan.limits.max_intermediate_rows, plan.materialised_steps());
        PairwiseMorsels { plan, budget }
    }

    /// The aggregated materialisation statistics of the finished run, or the
    /// budget violation some worker recorded.
    pub fn finish(self) -> Result<PairwiseStats, BaselineError> {
        self.budget.finish()
    }
}

impl MorselSource for PairwiseMorsels<'_> {
    type Worker = PairwiseWorker;

    fn worker(&self) -> PairwiseWorker {
        self.plan.acquire_worker()
    }

    fn run_morsel(
        &self,
        worker: &mut PairwiseWorker,
        morsel: Morsel,
        ctx: &ExecCtx<'_>,
        emit: &mut dyn FnMut(&[Val]) -> ControlFlow<()>,
    ) {
        self.plan.run_range(worker, morsel.lo, morsel.hi, &self.budget, ctx, emit);
    }

    /// Parks the worker (buffers + left-permutation cache) in the plan's pool, so
    /// the next execution of the same prepared plan starts with warm caches.
    fn retire_worker(&self, worker: PairwiseWorker) {
        self.plan.release_worker(worker);
    }
}

/// Counts the output of `query` over `instance` with the pairwise engine.
pub fn pairwise_count(
    instance: &Instance,
    query: &Query,
    algo: JoinAlgo,
    limits: &ExecLimits,
) -> Result<u64, BaselineError> {
    pairwise_count_with_stats(instance, query, algo, limits).map(|(count, _)| count)
}

/// Counts the output and also reports materialisation statistics. The final join
/// is streamed into a counter, so the count never materialises the full result.
pub fn pairwise_count_with_stats(
    instance: &Instance,
    query: &Query,
    algo: JoinAlgo,
    limits: &ExecLimits,
) -> Result<(u64, PairwiseStats), BaselineError> {
    pairwise_run(instance, query, algo, limits, &mut |_| ControlFlow::Continue(()))
}

/// One-shot convenience over [`PairwisePlan::new`] + [`PairwisePlan::run`]: plans,
/// prepares and runs in a single call. Under repeated traffic, build the plan once
/// and execute it many times instead.
pub fn pairwise_run(
    instance: &Instance,
    query: &Query,
    algo: JoinAlgo,
    limits: &ExecLimits,
    emit: &mut impl FnMut(&[Val]) -> ControlFlow<()>,
) -> Result<(u64, PairwiseStats), BaselineError> {
    PairwisePlan::new(instance, query, algo, *limits)?.run(emit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{naive_count, CatalogQuery};
    use gj_runtime::{drive, CollectSink, CountSink, FirstK};
    use gj_storage::Graph;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_instance(seed: u64, n: u32, p: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|_| rng.gen_bool(p))
            .collect();
        let g = Graph::new_undirected(n as usize, edges);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst.add_relation("v1", Relation::from_values((0..n as i64).step_by(3)));
        inst.add_relation("v2", Relation::from_values((0..n as i64).step_by(2)));
        inst.add_relation("v3", Relation::from_values((0..n as i64).step_by(5)));
        inst.add_relation("v4", Relation::from_values((1..n as i64).step_by(4)));
        inst
    }

    #[test]
    fn both_algorithms_match_the_naive_count_on_all_catalog_queries() {
        let inst = random_instance(31, 22, 0.2);
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let expected = naive_count(&inst, &q);
            for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
                let got = pairwise_count(&inst, &q, algo, &ExecLimits::default()).unwrap();
                assert_eq!(got, expected, "{} with {algo:?}", q.name);
            }
        }
    }

    #[test]
    fn budget_exceeded_is_reported_for_exploding_intermediates() {
        let inst = random_instance(32, 60, 0.3);
        let q = CatalogQuery::FourClique.query();
        let limits = ExecLimits { max_intermediate_rows: 500 };
        let err = pairwise_count(&inst, &q, JoinAlgo::Hash, &limits).unwrap_err();
        assert!(matches!(err, BaselineError::IntermediateBudgetExceeded { .. }));
    }

    #[test]
    fn missing_relation_is_an_error() {
        let inst = Instance::new();
        let q = CatalogQuery::ThreeClique.query();
        let err = pairwise_count(&inst, &q, JoinAlgo::Hash, &ExecLimits::default()).unwrap_err();
        assert!(matches!(err, BaselineError::MissingRelation(_)));
    }

    #[test]
    fn stats_show_larger_intermediates_on_cyclic_queries_than_output() {
        let inst = random_instance(33, 40, 0.25);
        let q = CatalogQuery::ThreeClique.query();
        let (count, stats) =
            pairwise_count_with_stats(&inst, &q, JoinAlgo::Hash, &ExecLimits::default()).unwrap();
        // The open-wedge intermediate is much bigger than the number of triangles —
        // the effect the paper blames for the relational systems' slowness.
        assert!(
            stats.peak_intermediate > count,
            "peak {} vs count {count}",
            stats.peak_intermediate
        );
    }

    #[test]
    fn pairwise_run_streams_deterministic_rows_and_stops_on_break() {
        let inst = random_instance(34, 20, 0.25);
        let q = CatalogQuery::ThreeClique.query();
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let mut rows: Vec<Val> = Vec::new();
            let (emitted, _) = pairwise_run(&inst, &q, algo, &ExecLimits::default(), &mut |r| {
                rows.extend_from_slice(r);
                ControlFlow::Continue(())
            })
            .unwrap();
            let width = q.num_vars();
            assert_eq!(emitted as usize, rows.len() / width, "{algo:?}");
            assert_eq!(emitted, naive_count(&inst, &q), "{algo:?}");
            // The streamed order is deterministic and duplicate-free (set semantics).
            let mut sorted: Vec<&[Val]> = rows.chunks_exact(width).collect();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len() as u64, emitted, "{algo:?}");
            // Early exit after two rows yields exactly the engine's first two.
            let mut prefix: Vec<Val> = Vec::new();
            let (two, _) = pairwise_run(&inst, &q, algo, &ExecLimits::default(), {
                &mut |r: &[Val]| {
                    prefix.extend_from_slice(r);
                    if prefix.len() == 2 * width {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                }
            })
            .unwrap();
            assert_eq!(two, 2, "{algo:?}");
            assert_eq!(prefix, rows[..2 * width], "{algo:?}");
        }
    }

    #[test]
    fn streamed_final_join_still_honours_the_row_budget() {
        // The final join is streamed, never materialised — but its output still
        // counts against the budget (the harness's timeout stand-in), so a budget
        // smaller than the result aborts just as it did before streaming.
        // An open wedge over a dense graph: the only materialised intermediate is
        // the edge list itself, while the (much larger) wedge output streams.
        let inst = random_instance(35, 40, 0.3);
        let q = gj_query::QueryBuilder::new("wedge")
            .atom("edge", &["a", "b"])
            .atom("edge", &["b", "c"])
            .build();
        let (count, full_stats) =
            pairwise_count_with_stats(&inst, &q, JoinAlgo::Hash, &ExecLimits::default()).unwrap();
        assert!(
            count > full_stats.peak_intermediate,
            "the test needs a streamed output larger than every materialised step"
        );
        let tight = ExecLimits { max_intermediate_rows: count as usize - 1 };
        let err = pairwise_count_with_stats(&inst, &q, JoinAlgo::Hash, &tight).unwrap_err();
        assert!(matches!(err, BaselineError::IntermediateBudgetExceeded { .. }));
        // An exact budget succeeds with identical (materialisation-only) stats: the
        // streamed rows are bounded but never counted as materialised.
        let exact = ExecLimits { max_intermediate_rows: count as usize };
        let (ok, stats) = pairwise_count_with_stats(&inst, &q, JoinAlgo::Hash, &exact).unwrap();
        assert_eq!(ok, count);
        assert_eq!(stats, full_stats);
    }

    #[test]
    fn empty_relation_gives_zero() {
        let mut inst = Instance::new();
        inst.add_relation("edge", Relation::empty(2));
        let q = CatalogQuery::FourCycle.query();
        assert_eq!(
            pairwise_count(&inst, &q, JoinAlgo::SortMerge, &ExecLimits::default()).unwrap(),
            0
        );
    }

    #[test]
    fn parallel_morsels_reproduce_the_serial_stream_exactly() {
        let inst = random_instance(36, 30, 0.2);
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::FourCycle, CatalogQuery::ThreePath] {
            let q = cq.query();
            for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
                let plan = PairwisePlan::new(&inst, &q, algo, ExecLimits::default()).unwrap();
                let mut serial: Vec<Val> = Vec::new();
                let (emitted, serial_stats) = plan
                    .run(&mut |row| {
                        serial.extend_from_slice(row);
                        ControlFlow::Continue(())
                    })
                    .unwrap();
                for parts in [2, 5, 16] {
                    let morsels = plan.partition(parts);
                    for threads in [1, 2, 4] {
                        let label = format!("{} {algo:?} parts {parts} threads {threads}", q.name);
                        let source = PairwiseMorsels::new(&plan);
                        let mut sink = CollectSink::new();
                        drive(&source, &morsels, threads, &mut sink);
                        let par_stats = source.finish().unwrap();
                        let flat: Vec<Val> =
                            sink.rows().iter().flat_map(|r| r.iter().copied()).collect();
                        assert_eq!(flat, serial, "{label}");
                        // Per-step aggregates across morsels equal the serial
                        // intermediate sizes.
                        assert_eq!(par_stats, serial_stats, "{label}");
                        let source = PairwiseMorsels::new(&plan);
                        let mut count = CountSink::new();
                        drive(&source, &morsels, threads, &mut count);
                        assert_eq!(count.rows(), emitted, "{label}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_budget_aggregates_across_workers() {
        // Wedge output is much larger than any materialised step; a budget one
        // short of the output must abort the *parallel* run too, even though every
        // single morsel stays far below the budget on its own.
        let inst = random_instance(37, 40, 0.3);
        let q = gj_query::QueryBuilder::new("wedge")
            .atom("edge", &["a", "b"])
            .atom("edge", &["b", "c"])
            .build();
        let count = pairwise_count(&inst, &q, JoinAlgo::Hash, &ExecLimits::default()).unwrap();
        let tight = ExecLimits { max_intermediate_rows: count as usize - 1 };
        let plan = PairwisePlan::new(&inst, &q, JoinAlgo::Hash, tight).unwrap();
        let morsels = plan.partition(16);
        assert!(morsels.len() > 4, "the test needs a real partition");
        let source = PairwiseMorsels::new(&plan);
        let mut sink = CountSink::new();
        drive(&source, &morsels, 4, &mut sink);
        let err = source.finish().unwrap_err();
        assert!(matches!(err, BaselineError::IntermediateBudgetExceeded { .. }), "{err:?}");
        // The exact budget still succeeds in parallel.
        let exact = ExecLimits { max_intermediate_rows: count as usize };
        let plan = PairwisePlan::new(&inst, &q, JoinAlgo::Hash, exact).unwrap();
        let source = PairwiseMorsels::new(&plan);
        let mut sink = CountSink::new();
        drive(&source, &plan.partition(16), 4, &mut sink);
        assert_eq!(sink.rows(), count);
        source.finish().unwrap();
    }

    #[test]
    fn early_termination_delivers_the_serial_prefix() {
        let inst = random_instance(38, 30, 0.25);
        let q = CatalogQuery::ThreeClique.query();
        let plan = PairwisePlan::new(&inst, &q, JoinAlgo::Hash, ExecLimits::default()).unwrap();
        let mut serial: Vec<Val> = Vec::new();
        plan.run(&mut |row| {
            serial.extend_from_slice(row);
            ControlFlow::Continue(())
        })
        .unwrap();
        assert!(serial.len() >= 3 * q.num_vars(), "the test needs at least three rows");
        let morsels = plan.partition(8);
        let source = PairwiseMorsels::new(&plan);
        let mut sink = FirstK::new(3);
        drive(&source, &morsels, 4, &mut sink);
        source.finish().unwrap();
        let flat: Vec<Val> = sink.into_rows().iter().flat_map(|r| r.iter().copied()).collect();
        assert_eq!(flat, serial[..3 * q.num_vars()]);
    }

    #[test]
    fn worker_buffers_are_reused_across_morsels() {
        let inst = random_instance(39, 30, 0.2);
        let q = CatalogQuery::ThreeClique.query();
        let plan = PairwisePlan::new(&inst, &q, JoinAlgo::Hash, ExecLimits::default()).unwrap();
        let budget = BudgetState::new(usize::MAX, plan.materialised_steps());
        let mut worker = plan.worker();
        let morsels = plan.partition(6);
        let count_all = |worker: &mut PairwiseWorker| -> u64 {
            morsels
                .iter()
                .map(|m| {
                    plan.run_range(worker, m.lo, m.hi, &budget, &ExecCtx::none(), &mut |_| {
                        ControlFlow::Continue(())
                    })
                })
                .sum()
        };
        // Driving several morsels through a single worker must agree with the
        // serial count, and a second pass over the same (reused) buffers must be
        // identical — the buffer-recycling path is exercised directly here.
        let total = count_all(&mut worker);
        let again = count_all(&mut worker);
        assert_eq!(total, again);
        assert_eq!(total, naive_count(&inst, &q));
    }

    #[test]
    fn cached_left_permutations_keep_merge_join_output_identical() {
        // A worker that re-runs the same morsels serves the merge joins from its
        // left-permutation cache; the emitted stream must stay byte-identical and
        // the cache must stop growing once every (step, morsel) pair is seen.
        let inst = random_instance(41, 30, 0.2);
        for cq in [CatalogQuery::ThreeClique, CatalogQuery::ThreePath, CatalogQuery::FourCycle] {
            let q = cq.query();
            let plan =
                PairwisePlan::new(&inst, &q, JoinAlgo::SortMerge, ExecLimits::default()).unwrap();
            let budget = BudgetState::new(usize::MAX, plan.materialised_steps());
            let morsels = plan.partition(6);
            assert!(morsels.len() > 1, "{}: the test needs a real partition", q.name);
            let mut worker = plan.worker();
            assert_eq!(worker.cached_perms(), 0);
            let collect = |worker: &mut PairwiseWorker| -> Vec<Val> {
                let mut rows = Vec::new();
                for m in &morsels {
                    plan.run_range(worker, m.lo, m.hi, &budget, &ExecCtx::none(), &mut |r| {
                        rows.extend_from_slice(r);
                        ControlFlow::Continue(())
                    });
                }
                rows
            };
            let cold = collect(&mut worker);
            let cached = worker.cached_perms();
            assert!(cached > 0, "{}: no permutation was cached", q.name);
            let warm = collect(&mut worker);
            assert_eq!(warm, cold, "{}: cached permutations changed the output", q.name);
            assert_eq!(worker.cached_perms(), cached, "{}: cache kept growing", q.name);
        }
    }

    #[test]
    fn perm_cache_is_bounded_under_varying_partitionings() {
        // A long-lived plan driven with many different partitionings (varying
        // thread counts) must not grow a worker's permutation cache without
        // bound: the cap drops stale generations, and results stay exact.
        let inst = random_instance(44, 40, 0.2);
        let q = CatalogQuery::ThreePath.query();
        let plan =
            PairwisePlan::new(&inst, &q, JoinAlgo::SortMerge, ExecLimits::default()).unwrap();
        let budget = BudgetState::new(usize::MAX, plan.materialised_steps());
        let mut worker = plan.worker();
        let serial = plan.run(&mut |_| ControlFlow::Continue(())).unwrap().0;
        // Hundreds of distinct partitionings -> thousands of distinct keys.
        for parts in 2..200 {
            let mut rows = 0;
            for m in plan.partition(parts) {
                rows +=
                    plan.run_range(&mut worker, m.lo, m.hi, &budget, &ExecCtx::none(), &mut |_| {
                        ControlFlow::Continue(())
                    });
            }
            assert_eq!(rows, serial, "parts {parts}");
            assert!(
                worker.cached_perms() <= PERM_CACHE_CAP,
                "cache exceeded its cap: {} at parts {parts}",
                worker.cached_perms()
            );
        }
    }

    #[test]
    fn worker_pool_survives_across_executions() {
        let inst = random_instance(42, 30, 0.2);
        let q = CatalogQuery::ThreePath.query();
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let plan = PairwisePlan::new(&inst, &q, algo, ExecLimits::default()).unwrap();
            let (first, _) = plan.run(&mut |_| ControlFlow::Continue(())).unwrap();
            // Serial reruns recycle the pooled worker (and its caches).
            let (second, _) = plan.run(&mut |_| ControlFlow::Continue(())).unwrap();
            assert_eq!(first, second, "{algo:?}");
            // Parallel executions retire their workers into the same pool; a
            // rerun over the same morsels must be byte-identical to the cold run.
            let morsels = plan.partition(8);
            let run_par = || {
                let source = PairwiseMorsels::new(&plan);
                let mut sink = CollectSink::new();
                drive(&source, &morsels, 4, &mut sink);
                source.finish().unwrap();
                sink.into_rows()
            };
            let cold = run_par();
            let warm = run_par();
            assert_eq!(cold, warm, "{algo:?}");
            assert_eq!(cold.len() as u64, first, "{algo:?}");
        }
    }

    #[test]
    fn base_budget_aborts_before_the_copy() {
        // A budget smaller than the restricted base must abort the run during the
        // base build; the step-0 aggregate still records the attempted size.
        let inst = random_instance(43, 40, 0.25);
        let q = CatalogQuery::ThreeClique.query();
        let edge_rows = inst.relation("edge").unwrap().len();
        let tight = ExecLimits { max_intermediate_rows: edge_rows - 1 };
        let plan = PairwisePlan::new(&inst, &q, JoinAlgo::Hash, tight).unwrap();
        let mut emitted = 0u64;
        let err = plan
            .run(&mut |_| {
                emitted += 1;
                ControlFlow::Continue(())
            })
            .unwrap_err();
        assert!(matches!(err, BaselineError::IntermediateBudgetExceeded { .. }));
        assert_eq!(emitted, 0, "the run must abort before any row is produced");
    }

    #[test]
    fn negative_values_survive_the_morsel_partition() {
        // Morsels from `partition` must tile the whole signed axis: the first
        // morsel starts at NEG_INF, so base rows with negative first-column
        // values are not silently dropped by the parallel path.
        let mut inst = Instance::new();
        inst.add_relation("r", Relation::from_pairs((-10..10).map(|i| (i, i + 1))));
        let q = gj_query::QueryBuilder::new("2-path")
            .atom("r", &["a", "b"])
            .atom("r", &["b", "c"])
            .build();
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let plan = PairwisePlan::new(&inst, &q, algo, ExecLimits::default()).unwrap();
            let mut serial: Vec<Val> = Vec::new();
            let (count, _) = plan
                .run(&mut |row| {
                    serial.extend_from_slice(row);
                    ControlFlow::Continue(())
                })
                .unwrap();
            // b ranges over {-9..=9}: 19 two-paths, most through negative values.
            assert_eq!(count, 19, "{algo:?}");
            let morsels = plan.partition(8);
            assert!(morsels.len() > 1, "the test needs a real partition");
            assert_eq!(morsels[0].lo, gj_storage::NEG_INF, "{algo:?}");
            for threads in [1, 4] {
                let source = PairwiseMorsels::new(&plan);
                let mut sink = CollectSink::new();
                drive(&source, &morsels, threads, &mut sink);
                source.finish().unwrap();
                let flat: Vec<Val> = sink.rows().iter().flat_map(|r| r.iter().copied()).collect();
                assert_eq!(flat, serial, "{algo:?} threads {threads}");
            }
        }
    }

    #[test]
    fn budget_aborts_serial_and_parallel_consistently_on_filtered_queries() {
        // The budget counts pre-filter materialised rows, so a budget between the
        // post-filter and pre-filter intermediate sizes of a filtered query must
        // abort the serial AND the parallel run — not just one of them.
        let inst = random_instance(40, 30, 0.25);
        let q = CatalogQuery::ThreeClique.query();
        let generous = PairwisePlan::new(&inst, &q, JoinAlgo::Hash, ExecLimits::default()).unwrap();
        let (_, stats) = generous.run(&mut |_| ControlFlow::Continue(())).unwrap();
        // peak is the pre-filter wedge count; a budget just below it must trip.
        let tight = ExecLimits { max_intermediate_rows: stats.peak_intermediate as usize - 1 };
        let plan = PairwisePlan::new(&inst, &q, JoinAlgo::Hash, tight).unwrap();
        let serial = plan.run(&mut |_| ControlFlow::Continue(())).unwrap_err();
        assert!(matches!(serial, BaselineError::IntermediateBudgetExceeded { .. }));
        let morsels = plan.partition(8);
        assert!(morsels.len() > 1, "the test needs a real partition");
        let source = PairwiseMorsels::new(&plan);
        let mut sink = CountSink::new();
        drive(&source, &morsels, 4, &mut sink);
        let parallel = source.finish().unwrap_err();
        assert!(matches!(parallel, BaselineError::IntermediateBudgetExceeded { .. }));
        // And an exact pre-filter budget succeeds both ways with equal stats.
        let exact = ExecLimits { max_intermediate_rows: stats.peak_intermediate as usize };
        let plan = PairwisePlan::new(&inst, &q, JoinAlgo::Hash, exact).unwrap();
        let (count, serial_stats) = plan.run(&mut |_| ControlFlow::Continue(())).unwrap();
        let source = PairwiseMorsels::new(&plan);
        let mut sink = CountSink::new();
        drive(&source, &plan.partition(8), 4, &mut sink);
        assert_eq!(sink.rows(), count);
        assert_eq!(source.finish().unwrap(), serial_stats);
    }
}
