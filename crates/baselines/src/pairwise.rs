//! The pairwise (Selinger-style) executor — PostgreSQL / MonetDB stand-ins.
//!
//! Executes the left-deep plan chosen by the [`planner`](crate::planner), joining one
//! atom at a time and materialising every intermediate, with either hash joins
//! ([`JoinAlgo::Hash`], the row-store stand-in) or sort-merge joins
//! ([`JoinAlgo::SortMerge`], the column-store stand-in). Order filters are applied as
//! soon as both of their variables are present in the intermediate — the same
//! opportunity a SQL engine has.
//!
//! A configurable budget on materialised rows ([`ExecLimits`]) lets the benchmark
//! harness report the paper's "timeout" cells without exhausting memory: when an
//! intermediate exceeds the budget the execution aborts with
//! [`BaselineError::IntermediateBudgetExceeded`].

use crate::intermediate::Intermediate;
use crate::planner::plan_left_deep;
use gj_query::{Instance, Query};
use std::ops::ControlFlow;

/// Which physical pairwise join operator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Build/probe hash join (row-store / PostgreSQL stand-in).
    Hash,
    /// Sort-merge join (column-store / MonetDB stand-in).
    SortMerge,
}

/// Resource limits for a pairwise execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum number of rows any single materialised intermediate may reach.
    pub max_intermediate_rows: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits { max_intermediate_rows: 50_000_000 }
    }
}

/// Errors from the pairwise executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// A referenced relation is missing from the instance.
    MissingRelation(String),
    /// An intermediate grew past the configured budget (reported as a timeout in the
    /// harness, mirroring the paper's "-" cells).
    IntermediateBudgetExceeded { rows: usize, budget: usize },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::MissingRelation(name) => write!(f, "relation {name} not found"),
            BaselineError::IntermediateBudgetExceeded { rows, budget } => {
                write!(f, "intermediate result of {rows} rows exceeded the budget of {budget}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// Statistics of a pairwise execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairwiseStats {
    /// Total rows materialised across all intermediates (including the final one).
    pub materialized_rows: u64,
    /// Size of the largest intermediate.
    pub peak_intermediate: u64,
}

/// Counts the output of `query` over `instance` with the pairwise engine.
pub fn pairwise_count(
    instance: &Instance,
    query: &Query,
    algo: JoinAlgo,
    limits: &ExecLimits,
) -> Result<u64, BaselineError> {
    pairwise_count_with_stats(instance, query, algo, limits).map(|(count, _)| count)
}

/// Counts the output and also reports materialisation statistics.
pub fn pairwise_count_with_stats(
    instance: &Instance,
    query: &Query,
    algo: JoinAlgo,
    limits: &ExecLimits,
) -> Result<(u64, PairwiseStats), BaselineError> {
    let (current, stats) = execute_plan(instance, query, algo, limits)?;
    Ok((current.len() as u64, stats))
}

/// Runs the left-deep plan to completion, returning the final materialised
/// intermediate (whose schema covers every query variable) and the statistics.
fn execute_plan(
    instance: &Instance,
    query: &Query,
    algo: JoinAlgo,
    limits: &ExecLimits,
) -> Result<(Intermediate, PairwiseStats), BaselineError> {
    let relations: Vec<&gj_storage::Relation> = query
        .atoms
        .iter()
        .map(|a| {
            instance
                .relation(&a.relation)
                .ok_or_else(|| BaselineError::MissingRelation(a.relation.clone()))
        })
        .collect::<Result<_, _>>()?;

    let plan = plan_left_deep(query, &relations);
    let mut stats = PairwiseStats::default();

    let first = plan.order[0];
    let mut current = Intermediate::from_relation(relations[first], &query.atoms[first].vars);
    current.apply_filters(&query.filters);
    track(&mut stats, &current, limits)?;

    for &idx in &plan.order[1..] {
        let right = Intermediate::from_relation(relations[idx], &query.atoms[idx].vars);
        current = match algo {
            JoinAlgo::Hash => current.hash_join(&right),
            JoinAlgo::SortMerge => current.sort_merge_join(&right),
        };
        current.apply_filters(&query.filters);
        track(&mut stats, &current, limits)?;
    }
    Ok((current, stats))
}

/// Runs the pairwise plan and streams the output rows, re-ordered into
/// **variable-id order** and sorted lexicographically, to `emit`; emission stops as
/// soon as `emit` returns [`ControlFlow::Break`]. Returns the number of rows emitted
/// and the materialisation statistics.
///
/// A pairwise engine materialises every intermediate (and the deterministic order
/// requires a full sort of the result), so the early exit only saves the per-row
/// projection and emission — exactly the limitation the paper attributes to these
/// systems (a worst-case optimal engine can stop mid-search instead). The sort and
/// projection work over a row-index permutation and a scratch row: no second copy
/// of the result is ever materialised.
pub fn pairwise_run(
    instance: &Instance,
    query: &Query,
    algo: JoinAlgo,
    limits: &ExecLimits,
    emit: &mut impl FnMut(&[gj_storage::Val]) -> ControlFlow<()>,
) -> Result<(u64, PairwiseStats), BaselineError> {
    let (last, stats) = execute_plan(instance, query, algo, limits)?;
    // The final intermediate joins every atom, so its schema contains each query
    // variable exactly once; project columns back to variable-id order.
    let cols: Vec<usize> = (0..query.num_vars())
        .map(|v| last.col_of(v).expect("the final intermediate covers every query variable"))
        .collect();
    let mut order: Vec<usize> = (0..last.rows.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        let (ra, rb) = (&last.rows[a], &last.rows[b]);
        cols.iter().map(|&c| ra[c]).cmp(cols.iter().map(|&c| rb[c]))
    });
    let mut scratch = vec![0; cols.len()];
    let mut emitted = 0u64;
    for &i in &order {
        for (slot, &c) in scratch.iter_mut().zip(&cols) {
            *slot = last.rows[i][c];
        }
        emitted += 1;
        if emit(&scratch).is_break() {
            break;
        }
    }
    Ok((emitted, stats))
}

fn track(
    stats: &mut PairwiseStats,
    intermediate: &Intermediate,
    limits: &ExecLimits,
) -> Result<(), BaselineError> {
    let rows = intermediate.len();
    stats.materialized_rows += rows as u64;
    stats.peak_intermediate = stats.peak_intermediate.max(rows as u64);
    if rows > limits.max_intermediate_rows {
        return Err(BaselineError::IntermediateBudgetExceeded {
            rows,
            budget: limits.max_intermediate_rows,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gj_query::{naive_count, CatalogQuery};
    use gj_storage::{Graph, Relation};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_instance(seed: u64, n: u32, p: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .filter(|_| rng.gen_bool(p))
            .collect();
        let g = Graph::new_undirected(n as usize, edges);
        let mut inst = Instance::new();
        inst.add_relation("edge", g.edge_relation());
        inst.add_relation("v1", Relation::from_values((0..n as i64).step_by(3)));
        inst.add_relation("v2", Relation::from_values((0..n as i64).step_by(2)));
        inst.add_relation("v3", Relation::from_values((0..n as i64).step_by(5)));
        inst.add_relation("v4", Relation::from_values((1..n as i64).step_by(4)));
        inst
    }

    #[test]
    fn both_algorithms_match_the_naive_count_on_all_catalog_queries() {
        let inst = random_instance(31, 22, 0.2);
        for cq in CatalogQuery::all() {
            let q = cq.query();
            let expected = naive_count(&inst, &q);
            for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
                let got = pairwise_count(&inst, &q, algo, &ExecLimits::default()).unwrap();
                assert_eq!(got, expected, "{} with {algo:?}", q.name);
            }
        }
    }

    #[test]
    fn budget_exceeded_is_reported_for_exploding_intermediates() {
        let inst = random_instance(32, 60, 0.3);
        let q = CatalogQuery::FourClique.query();
        let limits = ExecLimits { max_intermediate_rows: 500 };
        let err = pairwise_count(&inst, &q, JoinAlgo::Hash, &limits).unwrap_err();
        assert!(matches!(err, BaselineError::IntermediateBudgetExceeded { .. }));
    }

    #[test]
    fn missing_relation_is_an_error() {
        let inst = Instance::new();
        let q = CatalogQuery::ThreeClique.query();
        let err = pairwise_count(&inst, &q, JoinAlgo::Hash, &ExecLimits::default()).unwrap_err();
        assert!(matches!(err, BaselineError::MissingRelation(_)));
    }

    #[test]
    fn stats_show_larger_intermediates_on_cyclic_queries_than_output() {
        let inst = random_instance(33, 40, 0.25);
        let q = CatalogQuery::ThreeClique.query();
        let (count, stats) =
            pairwise_count_with_stats(&inst, &q, JoinAlgo::Hash, &ExecLimits::default()).unwrap();
        // The open-wedge intermediate is much bigger than the number of triangles —
        // the effect the paper blames for the relational systems' slowness.
        assert!(
            stats.peak_intermediate > count,
            "peak {} vs count {count}",
            stats.peak_intermediate
        );
    }

    #[test]
    fn pairwise_run_streams_sorted_rows_and_stops_on_break() {
        let inst = random_instance(34, 20, 0.25);
        let q = CatalogQuery::ThreeClique.query();
        let mut rows = Vec::new();
        let (emitted, _) =
            pairwise_run(&inst, &q, JoinAlgo::Hash, &ExecLimits::default(), &mut |r| {
                rows.push(r.to_vec());
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(emitted, rows.len() as u64);
        assert_eq!(emitted, naive_count(&inst, &q));
        assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must be sorted and distinct");
        // Early exit after two rows yields exactly the first two.
        let mut prefix = Vec::new();
        let (two, _) = pairwise_run(&inst, &q, JoinAlgo::SortMerge, &ExecLimits::default(), {
            &mut |r: &[gj_storage::Val]| {
                prefix.push(r.to_vec());
                if prefix.len() == 2 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            }
        })
        .unwrap();
        assert_eq!(two, 2);
        assert_eq!(prefix, rows[..2].to_vec());
    }

    #[test]
    fn empty_relation_gives_zero() {
        let mut inst = Instance::new();
        inst.add_relation("edge", Relation::empty(2));
        let q = CatalogQuery::FourCycle.query();
        assert_eq!(
            pairwise_count(&inst, &q, JoinAlgo::SortMerge, &ExecLimits::default()).unwrap(),
            0
        );
    }
}
