//! Quickstart: load a small graph, run the triangle query with every engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphjoin::{CatalogQuery, Database, Engine, ExecLimits, Graph};

fn main() {
    // A small social circle: two triangles sharing an edge plus a pendant node.
    let graph =
        Graph::new_undirected(6, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]);
    let mut db = Database::new();
    db.add_graph(&graph);

    let triangle = CatalogQuery::ThreeClique.query();
    println!("query: {triangle}");

    let engines = [
        Engine::Lftj,
        Engine::minesweeper(),
        Engine::HashJoin(ExecLimits::default()),
        Engine::SortMergeJoin(ExecLimits::default()),
        Engine::GraphEngine,
    ];
    for engine in &engines {
        let count = db.count(&triangle, engine).expect("triangle counting succeeds");
        println!("{:>10}: {} triangles", engine.label(), count);
    }

    // Enumeration returns the actual matches (bindings in a, b, c order).
    let matches = db.enumerate(&triangle, &Engine::Lftj).expect("enumeration succeeds");
    println!("matches: {matches:?}");
}
