//! Quickstart: load a small graph, prepare the triangle query once, and execute it
//! with every engine through the prepared-query API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphjoin::{CatalogQuery, Database, Engine, ExecLimits, Graph};

fn main() {
    // A small social circle: two triangles sharing an edge plus a pendant node.
    let graph =
        Graph::new_undirected(6, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]);
    let mut db = Database::new();
    db.add_graph(graph);

    let triangle = CatalogQuery::ThreeClique.query();
    println!("query: {triangle}");

    let engines = [
        Engine::Lftj,
        Engine::minesweeper(),
        Engine::HashJoin(ExecLimits::default()),
        Engine::SortMergeJoin(ExecLimits::default()),
        Engine::GraphEngine,
    ];
    for engine in &engines {
        // Prepare once (binding + GAO + indexes, shared across engines via the
        // database index cache), then execute as many times as needed.
        let prepared = db.prepare(&triangle, engine).expect("preparation succeeds");
        let count = prepared.count().expect("triangle counting succeeds");
        println!(
            "{:>10}: {} triangles ({} indexes built on prepare)",
            engine.label(),
            count,
            prepared.indexes_built()
        );
    }

    // Enumeration returns the actual matches (bindings in a, b, c order).
    let prepared = db.prepare(&triangle, &Engine::Lftj).expect("preparation succeeds");
    let matches = prepared.collect().expect("enumeration succeeds");
    println!("matches: {matches:?}");
    // Early termination through the sink protocol: just the first match.
    let first = prepared.first_k(1).expect("enumeration succeeds");
    println!("first:   {first:?}");
}
