//! Clique census over a synthetic social network.
//!
//! Generates the ego-Facebook stand-in (a dense, triangle-rich graph), then counts
//! triangles and 4-cliques with the worst-case optimal join, Minesweeper and the
//! specialised graph engine, reporting wall-clock times — a miniature version of the
//! paper's Table 6.
//!
//! ```sh
//! cargo run --release --example clique_census
//! ```

use graphjoin::{CatalogQuery, Database, Dataset, Engine};
use std::time::Instant;

fn main() {
    let dataset = Dataset::EgoFacebook;
    // A quarter-scale graph keeps the example under a few seconds in release mode.
    let graph = dataset.generate_scaled(0.25);
    println!(
        "{}-like graph: {} nodes, {} undirected edges, {} triangles",
        dataset.name(),
        graph.num_nodes(),
        graph.num_undirected_edges(),
        graph.triangle_count()
    );

    let mut db = Database::new();
    db.add_graph(graph);

    for query in [CatalogQuery::ThreeClique, CatalogQuery::FourClique] {
        println!("\n== {}", query.name());
        let q = query.query();
        for engine in [Engine::Lftj, Engine::minesweeper(), Engine::GraphEngine] {
            let start = Instant::now();
            let count = db.count(&q, &engine).expect("clique counting succeeds");
            println!("{:>10}: {:>12} matches in {:?}", engine.label(), count, start.elapsed());
        }
    }
}
