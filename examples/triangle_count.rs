//! Triangle counting end to end: generate a graph, prepare the 3-clique query
//! once, then count serially, in parallel, and with warm reruns — the
//! prepare/execute split and the morsel runtime in one small program.
//!
//! ```sh
//! cargo run --release --example triangle_count
//! ```

use graphjoin::{CatalogQuery, CountSink, Database, Engine, Graph};
use std::time::Instant;

fn main() {
    // A seeded powerlaw-cluster graph (triangle-rich, like a social network).
    let graph: Graph = gj_datagen::powerlaw_cluster(5_000, 8, 0.4, 42);
    println!("graph: {} nodes, {} directed edges", graph.num_nodes(), graph.num_edges());
    let mut db = Database::new();
    db.add_graph(graph);

    // Prepare once: validation, GAO selection and trie-index builds happen here,
    // against the database's shared index cache.
    let triangle = CatalogQuery::ThreeClique.query();
    let start = Instant::now();
    let prepared = db.prepare(&triangle, &Engine::Lftj).expect("triangle query prepares");
    println!(
        "prepare: {:.2} ms ({} trie indexes built)",
        start.elapsed().as_secs_f64() * 1e3,
        prepared.indexes_built()
    );

    // Execute many times. The serial count uses the engine's counting fast path.
    let start = Instant::now();
    let serial = prepared.count().expect("serial count");
    println!("serial count:   {serial} triangles in {:.2} ms", start.elapsed().as_secs_f64() * 1e3);

    // The parallel count drives the same prepared query through the morsel
    // runtime: the first GAO attribute is partitioned at data quantiles, workers
    // claim morsels from a shared pool, and per-worker engine state survives
    // across the morsels each worker claims.
    let start = Instant::now();
    let parallel = prepared.par_count(4).expect("parallel count");
    println!(
        "parallel count: {parallel} triangles in {:.2} ms (4 threads)",
        start.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(parallel, serial, "the morsel runtime is exact, not approximate");

    // Warm rerun: repeated executions of one PreparedQuery reuse cached indexes
    // and pooled worker state — the steady state of a query served under traffic.
    let start = Instant::now();
    let rerun = prepared.par_count(4).expect("warm rerun");
    println!("warm rerun:     {rerun} triangles in {:.2} ms", start.elapsed().as_secs_f64() * 1e3);

    // Sinks stream rows instead of counting; run_parallel merges the per-morsel
    // shards in morsel order, so any sink sees exactly the serial emission.
    let mut sink = CountSink::new();
    let stats = prepared.run_parallel(&mut sink, 4).expect("sink execution");
    println!(
        "run_parallel:   {} rows over {} morsels on {} threads",
        sink.rows(),
        stats.morsels,
        stats.threads
    );
}
