//! Friend-of-friend recommendation paths — the acyclic-query side of the paper.
//!
//! Builds a collaboration-network stand-in, samples a set of "source" users (`v1`)
//! and a set of "candidate" users (`v2`), and counts the 3-paths and 4-paths
//! connecting them at several selectivities. Minesweeper's caching makes it the
//! right engine once the samples get large (low selectivity), which is exactly the
//! effect behind Figures 3–5 of the paper.
//!
//! ```sh
//! cargo run --release --example friend_recommendation
//! ```

use graphjoin::{workload_database, CatalogQuery, Dataset, Engine};
use std::time::Instant;

fn main() {
    let dataset = Dataset::CaGrQc;
    let graph = std::sync::Arc::new(dataset.generate());
    println!(
        "{}-like graph: {} nodes, {} undirected edges",
        dataset.name(),
        graph.num_nodes(),
        graph.num_undirected_edges()
    );

    for query in [CatalogQuery::ThreePath, CatalogQuery::FourPath] {
        println!("\n== {}", query.name());
        for selectivity in [80u32, 8] {
            let db = workload_database(graph.clone(), query, selectivity, 42);
            let q = query.query();
            print!("selectivity {selectivity:>3}: ");
            for engine in [Engine::Lftj, Engine::minesweeper()] {
                let start = Instant::now();
                let count = db.count(&q, &engine).expect("path counting succeeds");
                print!("{}={} ({:?})  ", engine.label(), count, start.elapsed());
            }
            println!();
        }
    }
}
