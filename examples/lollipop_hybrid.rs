//! Lollipop patterns and the hybrid algorithm (Section 4.12 of the paper).
//!
//! A 2-lollipop is a 2-path ending in a triangle; a 3-lollipop is a 3-path ending in
//! a 4-clique. Neither LFTJ (hurt by the path's redundancy) nor Minesweeper (hurt by
//! the clique) is ideal alone; the hybrid runs Minesweeper over the path and LFTJ
//! over the clique. This example compares all three.
//!
//! ```sh
//! cargo run --release --example lollipop_hybrid
//! ```

use graphjoin::{workload_database, CatalogQuery, Dataset, Engine};
use std::time::Instant;

fn main() {
    let graph = std::sync::Arc::new(Dataset::CaGrQc.generate());
    println!(
        "ca-GrQc-like graph: {} nodes, {} undirected edges",
        graph.num_nodes(),
        graph.num_undirected_edges()
    );

    for query in [CatalogQuery::TwoLollipop, CatalogQuery::ThreeLollipop] {
        println!("\n== {} (selectivity 8)", query.name());
        let db = workload_database(graph.clone(), query, 8, 7);
        let q = query.query();
        let mut engines = vec![Engine::Lftj, Engine::minesweeper()];
        engines.push(Engine::hybrid_for(query).expect("lollipop queries support the hybrid"));
        for engine in engines {
            let start = Instant::now();
            let count = db.count(&q, &engine).expect("lollipop counting succeeds");
            println!("{:>10}: {:>12} matches in {:?}", engine.label(), count, start.elapsed());
        }
    }
}
