//! Engine shoot-out: every engine on every catalog query over one dataset.
//!
//! A miniature, single-dataset rendition of the paper's Tables 6 and 7: rows are
//! queries, columns are engines, cells are milliseconds (or `-` when an engine does
//! not support the query or exceeds its materialisation budget — the paper's
//! timeouts).
//!
//! ```sh
//! cargo run --release --example engine_shootout
//! ```

use graphjoin::{workload_database, CatalogQuery, Dataset, Engine, ExecLimits};
use std::time::Instant;

fn main() {
    let dataset = Dataset::CaGrQc;
    let graph = std::sync::Arc::new(dataset.generate());
    println!(
        "dataset {} (synthetic stand-in): {} nodes, {} undirected edges\n",
        dataset.name(),
        graph.num_nodes(),
        graph.num_undirected_edges()
    );

    // A small materialisation budget keeps the pairwise baselines from thrashing on
    // the cyclic queries, mirroring the paper's 30-minute timeout.
    let limits = ExecLimits { max_intermediate_rows: 5_000_000 };
    let engines = vec![
        Engine::Lftj,
        Engine::minesweeper(),
        Engine::HashJoin(limits),
        Engine::SortMergeJoin(limits),
        Engine::GraphEngine,
    ];

    print!("{:<12}", "query");
    for e in &engines {
        print!("{:>12}", e.label());
    }
    println!("{:>12}", "lb/hybrid");

    for cq in CatalogQuery::all() {
        let db = workload_database(graph.clone(), cq, 8, 123);
        let q = cq.query();
        print!("{:<12}", cq.name());
        for engine in &engines {
            let start = Instant::now();
            match db.count(&q, engine) {
                Ok(_) => print!("{:>10}ms", start.elapsed().as_millis()),
                Err(_) => print!("{:>12}", "-"),
            }
        }
        match Engine::hybrid_for(cq) {
            Some(hybrid) => {
                let start = Instant::now();
                match db.count(&q, &hybrid) {
                    Ok(_) => println!("{:>10}ms", start.elapsed().as_millis()),
                    Err(_) => println!("{:>12}", "-"),
                }
            }
            None => println!("{:>12}", "-"),
        }
    }
}
